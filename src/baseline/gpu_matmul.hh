/**
 * @file
 * Analytic utilization model of a tensor-core GPU (A100-class) for
 * matrix multiplication — the Fig 13 comparison baseline.
 *
 * The model follows Nvidia's own "Matrix Multiplication Background"
 * guidance (the paper's reference [33]): work is decomposed into
 * thread-block tiles (128x128 here); a wave is the set of tiles the
 * 108 SMs execute concurrently. Utilization losses come from
 * (1) tile quantization — partial tiles at the matrix edges do full-
 * tile work — and (2) wave quantization — the final wave runs with
 * idle SMs. Both produce the characteristic sawtooth of Fig 13.
 */

#ifndef TSM_BASELINE_GPU_MATMUL_HH
#define TSM_BASELINE_GPU_MATMUL_HH

#include <cstdint>

namespace tsm {

/** A100-like machine description. */
struct GpuModel
{
    unsigned sms = 108;       ///< streaming multiprocessors
    unsigned tileM = 128;     ///< thread-block tile rows
    unsigned tileN = 128;     ///< thread-block tile cols
    double peakFp16Tflops = 312.0;

    /** Fraction of peak reachable even with perfect quantization
     *  (instruction overheads, memory stalls). */
    double efficiencyCeiling = 0.9;
};

/** Utilization/throughput prediction for one GEMM. */
struct GpuGemmEstimate
{
    double utilization = 0.0; ///< fraction of peak FLOPs
    double tflops = 0.0;
    std::uint64_t tiles = 0;
    std::uint64_t waves = 0;
};

/**
 * Estimate utilization for C[M x N] = A[M x K] * B[K x N] on the GPU
 * model. K enters only through total work (quantization along K is
 * second-order for the sizes of interest).
 */
GpuGemmEstimate gpuGemmUtilization(const GpuModel &gpu, std::uint64_t m,
                                   std::uint64_t k, std::uint64_t n);

/** TSP machine description for the same estimate (paper §5.2). */
struct TspMatmulModel
{
    /** Output columns per sub-operation (vector lanes). */
    unsigned tileN = 320;

    /** Reduction depth per fp16 sub-operation. */
    unsigned tileK = 160;

    /** fp16 sub-operations retired per cycle. */
    unsigned subopsPerCycle = 2;

    double clockGhz = 0.9;

    /** Peak fp16 TFLOPs: 2 * 160 * 320 * 2/cycle * 0.9 GHz. */
    double peakFp16Tflops() const;
};

/** Utilization/throughput prediction for the TSP. */
struct TspGemmEstimate
{
    double utilization = 0.0;
    double tflops = 0.0;
    std::uint64_t subops = 0;
    std::uint64_t cycles = 0;
};

/**
 * Estimate utilization for the TSP decomposition into [1 x K']x[K' x
 * 320] sub-operations (K' = 160 fp16): quantization happens along N
 * (320-wide output tiles) and K (160-deep weight loads) only — there
 * is no wave quantization because the chip is one logical core, which
 * is why the paper reports a flat >= 80% across N (Fig 13).
 */
TspGemmEstimate tspGemmUtilization(const TspMatmulModel &tsp,
                                   std::uint64_t m, std::uint64_t k,
                                   std::uint64_t n);

} // namespace tsm

#endif // TSM_BASELINE_GPU_MATMUL_HH
