tsm_module(baseline
    hw_router.cc
    gpu_matmul.cc
    sharedmem_allreduce.cc
)
