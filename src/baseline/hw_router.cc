#include "baseline/hw_router.hh"

#include <algorithm>

#include "common/format.hh"
#include "common/log.hh"
#include "prof/blame.hh"

namespace tsm {

void
HwBlameRecorder::onGrant(LinkId link, TspId router, unsigned port,
                         FlowId flow, Tick ready, Tick depart, Tick until)
{
    auto &intervals = occ_[{router, port}];
    LinkTotals &lt = links_[link];
    ++lt.grants;
    ++grants_;
    if (depart > ready) {
        const Tick wait = depart - ready;
        waitPs_ += wait;
        lt.waitPs += wait;
        Tick covered = 0;
        for (const Interval &iv : intervals) {
            const Tick lo = std::max(ready, iv.start);
            const Tick hi = std::min(depart, iv.end);
            if (hi <= lo)
                continue;
            const Tick share = hi - lo;
            covered += share;
            flowPairs_[flow][iv.flow] += share;
            linkFlows_[link][iv.flow] += share;
        }
        blamedPs_ += covered;
        lt.blamedPs += covered;
        grid_.add(link, ready, depart);
    }
    intervals.push_back({depart, until, flow});
}

Json
HwBlameRecorder::report(const std::string &bench, std::uint64_t seed) const
{
    Json doc = Json::object();
    doc.set("schema", kBlameSchema);
    doc.set("bench", bench);
    doc.set("seed", seed);
    doc.set("source", "hw_router");

    Json totals = Json::object();
    totals.set("recvs", grants_);
    totals.set("wait_ps", waitPs_);
    totals.set("blamed_ps", blamedPs_);
    totals.set("local_ps", std::int64_t(0));
    totals.set("margin_ps", waitPs_ - blamedPs_);
    doc.set("totals", std::move(totals));

    // No causal spans on the hardware path: per-transfer attribution
    // is exactly what dynamic routing cannot give you.
    doc.set("transfers", Json::array());
    Json summary = Json::object();
    summary.set("count", std::int64_t(0));
    summary.set("wait_ps", std::int64_t(0));
    doc.set("transfers_summary", std::move(summary));

    struct PairRow
    {
        FlowId blocked;
        FlowId blocker;
        Tick ps;
    };
    std::vector<PairRow> pairs;
    for (const auto &[blocked, by] : flowPairs_)
        for (const auto &[blocker, ps] : by)
            pairs.push_back({blocked, blocker, ps});
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const PairRow &a, const PairRow &b) {
                         return a.ps > b.ps;
                     });
    Json jpairs = Json::array();
    for (const PairRow &p : pairs) {
        Json e = Json::object();
        e.set("blocked", p.blocked);
        e.set("blocker", p.blocker);
        e.set("ps", p.ps);
        jpairs.push(std::move(e));
    }
    doc.set("flow_pairs", std::move(jpairs));

    Json jlinks = Json::array();
    for (const auto &[link, lt] : links_) {
        Json e = Json::object();
        e.set("id", link);
        e.set("recvs", lt.grants);
        e.set("wait_ps", lt.waitPs);
        Json shares = Json::object();
        Json flows = Json::object();
        if (auto it = linkFlows_.find(link); it != linkFlows_.end())
            for (const auto &[f, ps] : it->second)
                flows.set(format("{}", f), ps);
        shares.set("flows", std::move(flows));
        shares.set("local_ps", std::int64_t(0));
        shares.set("margin_ps", lt.waitPs - lt.blamedPs);
        e.set("shares", std::move(shares));
        jlinks.push(std::move(e));
    }
    doc.set("links", std::move(jlinks));

    doc.set("chains", Json::array());
    doc.set("windows", grid_.toJson());
    return doc;
}

HwRoutedNetwork::HwRoutedNetwork(const Topology &topo, EventQueue &eq,
                                 const Rng &rng, HwConfig config)
    : topo_(&topo), eventq_(&eq), rng_(rng.fork(0x68777274)),
      seed_(rng.fork(0x68777275).next64()), config_(config)
{
    TSM_ASSERT(config_.numVcs >= 1, "need at least one virtual channel");
    routers_.resize(topo.numTsps());
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        auto &r = routers_[t];
        r.inputs.resize(std::size_t(kPortsPerTsp) * config_.numVcs);
        r.credits.assign(std::size_t(kPortsPerTsp) * config_.numVcs,
                         config_.queueDepth);
        r.outputBusyUntil.assign(kPortsPerTsp, 0);
    }
}

const std::vector<LinkId> &
HwRoutedNetwork::minimalOutputs(TspId at, TspId dst)
{
    auto it = routeCache_.find(dst);
    if (it == routeCache_.end()) {
        // BFS from dst over the multigraph, then collect, per tsp, the
        // links that decrease distance.
        std::vector<unsigned> dist(topo_->numTsps(), ~0u);
        std::deque<TspId> queue{dst};
        dist[dst] = 0;
        while (!queue.empty()) {
            const TspId cur = queue.front();
            queue.pop_front();
            for (LinkId l : topo_->linksAt(cur)) {
                if (!topo_->linkEnabled(l))
                    continue;
                const TspId next = topo_->links()[l].peer(cur);
                if (dist[next] == ~0u) {
                    dist[next] = dist[cur] + 1;
                    queue.push_back(next);
                }
            }
        }
        std::vector<std::vector<LinkId>> table(topo_->numTsps());
        for (TspId t = 0; t < topo_->numTsps(); ++t) {
            for (LinkId l : topo_->linksAt(t)) {
                if (!topo_->linkEnabled(l))
                    continue;
                const TspId next = topo_->links()[l].peer(t);
                if (dist[next] + 1 == dist[t])
                    table[t].push_back(l);
            }
        }
        it = routeCache_.emplace(dst, std::move(table)).first;
    }
    return it->second[at];
}

unsigned
HwRoutedNetwork::nextVc(const Packet &pkt, LinkId link, TspId from) const
{
    if (config_.numVcs <= 1)
        return 0;
    // Dateline rule: crossing the wrap-around link (highest TSP ->
    // TSP 0 direction) bumps the packet to the next VC, breaking the
    // cyclic dependency around the ring.
    const Link &l = topo_->links()[link];
    const TspId to = l.peer(from);
    const bool crosses_dateline =
        (from == topo_->numTsps() - 1 && to == 0);
    if (crosses_dateline)
        return std::min(pkt.vc + 1, config_.numVcs - 1);
    return pkt.vc;
}

void
HwRoutedNetwork::inject(FlowId flow, TspId src, TspId dst,
                        std::uint32_t vectors, Tick when)
{
    TSM_ASSERT(src != dst, "injection to self");
    flowOutstanding_[flow] += vectors;
    injected_ += vectors;
    const Tick ser = Tick(kVectorSerializationPs);
    for (std::uint32_t v = 0; v < vectors; ++v) {
        const Tick t = when + v * ser; // line-rate source
        eventq_->schedule(
            t,
            [this, flow, v, src, dst, t] {
                Packet pkt;
                pkt.flow = flow;
                pkt.seq = v;
                pkt.dst = dst;
                pkt.injected = t;
                pkt.ready = t;
                routers_[src].injection.push_back(pkt);
                kick(src);
            },
            kSpanNone, EventKind::RouterHop);
    }
}

void
HwRoutedNetwork::kick(TspId router)
{
    for (LinkId l : topo_->linksAt(router))
        if (topo_->linkEnabled(l))
            tryForward(router, l);
}

void
HwRoutedNetwork::tryForward(TspId router, LinkId out)
{
    RouterState &r = routers_[router];
    const Link &link = topo_->links()[out];
    const unsigned out_port = link.portAt(router);

    if (r.outputBusyUntil[out_port] > eventq_->now())
        return; // serializing another packet

    // Arbitrate round-robin over the input FIFOs — one per (port,
    // VC) — with the injection queue as the last slot.
    const unsigned arbs =
        kPortsPerTsp * config_.numVcs + 1;
    const unsigned inj_slot = arbs - 1;
    for (unsigned probe = 0; probe < arbs; ++probe) {
        const unsigned slot = (r.rrPointer + probe) % arbs;
        std::deque<Packet> &fifo =
            slot == inj_slot ? r.injection : r.inputs[slot];
        if (fifo.empty())
            continue;
        const Packet &head = fifo.front();

        // Route the head packet: does it want this output?
        const auto &outs = minimalOutputs(router, head.dst);
        TSM_ASSERT(!outs.empty(), "no route toward destination");
        LinkId want = outs.front();
        if (config_.routing == HwRouting::ObliviousMinimal &&
            outs.size() > 1) {
            // Per-(packet, hop) choice: varies packet to packet but
            // is stable across arbitration retries (a head must not
            // change its mind while waiting, or it can starve waiting
            // for an output nobody will wake).
            std::uint64_t h = (std::uint64_t(head.flow) << 32) ^
                              (std::uint64_t(head.seq) << 8) ^ router ^
                              (seed_ * 0x9e3779b97f4a7c15ULL);
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdULL;
            h ^= h >> 33;
            want = outs[h % outs.size()];
        } else if (config_.routing == HwRouting::AdaptiveMinimal) {
            unsigned best_credit = 0;
            for (LinkId cand : outs) {
                const unsigned cp = topo_->links()[cand].portAt(router);
                const unsigned cv = nextVc(head, cand, router);
                if (r.credits[pv(cp, cv)] > best_credit) {
                    best_credit = r.credits[pv(cp, cv)];
                    want = cand;
                }
            }
        }
        if (want != out)
            continue;

        // The packet's VC on the outgoing link (dateline may bump it);
        // it needs a downstream credit on that VC.
        const unsigned out_vc = nextVc(head, out, router);
        const TspId next = link.peer(router);
        const bool ejecting = next == head.dst;
        if (!ejecting && r.credits[pv(out_port, out_vc)] == 0)
            continue; // this VC's downstream buffer is full

        // Forward: occupy the output for the serialization time, and
        // consume a credit unless the next hop is the destination's
        // ejection (modeled as infinite sink).
        Packet pkt = fifo.front();
        fifo.pop_front();
        r.rrPointer = (slot + 1) % arbs;

        const Tick ser = Tick(kVectorSerializationPs);
        const Tick prop = linkPropagationPs(link.cls);
        const Tick depart = eventq_->now();
        r.outputBusyUntil[out_port] = depart + ser;
        if (blame_)
            blame_->onGrant(out, router, out_port, pkt.flow, pkt.ready,
                            depart, depart + ser);

        const unsigned prev_vc = pkt.vc;
        pkt.vc = out_vc;
        if (!ejecting)
            --r.credits[pv(out_port, out_vc)];

        // If the packet came from an input FIFO, a credit returns to
        // the upstream router once the buffer slot frees (now).
        if (slot != inj_slot) {
            const unsigned in_port = slot / config_.numVcs;
            const auto in_link = topo_->linkAtPort(router, in_port);
            TSM_ASSERT(in_link.has_value(), "input slot without a link");
            const TspId upstream = topo_->links()[*in_link].peer(router);
            const unsigned up_port = topo_->links()[*in_link].portAt(upstream);
            eventq_->schedule(
                depart + prop,
                [this, upstream, up_port, prev_vc] {
                    ++routers_[upstream].credits[pv(up_port, prev_vc)];
                    kick(upstream);
                },
                kSpanNone, EventKind::RouterHop);
        }

        eventq_->schedule(
            depart + ser + prop,
            [this, next, out, pkt] { arrive(next, out, pkt); },
            kSpanNone, EventKind::RouterHop);

        // This output is busy now; re-evaluate the whole router when
        // it frees (a new head may prefer a different output).
        eventq_->schedule(
            depart + ser, [this, router] { kick(router); }, kSpanNone,
            EventKind::RouterHop);
        return;
    }
}

void
HwRoutedNetwork::arrive(TspId router, LinkId in, Packet pkt)
{
    if (router == pkt.dst) {
        ++delivered_;
        latency_.add(psToNs(double(eventq_->now() - pkt.injected)));
        auto &outstanding = flowOutstanding_[pkt.flow];
        TSM_ASSERT(outstanding > 0, "over-delivered flow");
        if (--outstanding == 0)
            flowDone_[pkt.flow] = eventq_->now();
        return;
    }
    const unsigned in_port = topo_->links()[in].portAt(router);
    pkt.ready = eventq_->now();
    routers_[router].inputs[pv(in_port, pkt.vc)].push_back(pkt);
    kick(router);
}

Tick
HwRoutedNetwork::flowCompletion(FlowId f) const
{
    auto it = flowDone_.find(f);
    TSM_ASSERT(it != flowDone_.end(), "flow not complete (or unknown)");
    return it->second;
}

} // namespace tsm
