#include "baseline/sharedmem_allreduce.hh"

#include "common/log.hh"

namespace tsm {

namespace {

AllReduceEstimate
ringModel(unsigned n, double bytes_per_sec, double launch, double mailbox,
          double efficiency, Bytes bytes)
{
    TSM_ASSERT(n >= 2, "all-reduce needs at least two participants");
    AllReduceEstimate est;
    // Ring all-reduce: 2(n-1) steps, each moving S/n bytes per GPU and
    // paying one mailbox handshake.
    const double steps = 2.0 * double(n - 1);
    const double bw_term =
        steps * (double(bytes) / double(n)) / (bytes_per_sec * efficiency);
    est.seconds = launch + steps * mailbox + bw_term;
    est.busBandwidthBytesPerSec =
        (steps / double(n)) * double(bytes) / est.seconds;
    return est;
}

} // namespace

AllReduceEstimate
gpuRingAllReduce(const GpuAllReduceModel &model, Bytes bytes)
{
    return ringModel(model.gpus, model.linkBytesPerSec,
                     model.launchOverheadSec, model.mailboxOverheadSec,
                     model.bandwidthEfficiency, bytes);
}

AllReduceEstimate
gpuRingAllReduceNormalized(const GpuAllReduceModel &model, Bytes bytes,
                           double tsp_bytes_per_sec)
{
    return ringModel(model.gpus, tsp_bytes_per_sec,
                     model.launchOverheadSec, model.mailboxOverheadSec,
                     model.bandwidthEfficiency, bytes);
}

} // namespace tsm
