/**
 * @file
 * A conventional hardware-routed network on the same topology — the
 * baseline SSN is contrasted against (paper Fig 1, Fig 8).
 *
 * Each TSP position hosts an input-queued router: per-input-port
 * FIFOs, credit-based flow control toward downstream buffers,
 * round-robin output arbitration, and per-packet routing (deterministic
 * minimal, oblivious random among minimal ports, or credit-greedy
 * adaptive). All the machinery the paper deletes — arbitration,
 * queueing, back-pressure — lives here, and produces the latency
 * variance the deterministic design eliminates.
 */

#ifndef TSM_BASELINE_HW_ROUTER_HH
#define TSM_BASELINE_HW_ROUTER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"
#include "telemetry/contention.hh"

namespace tsm {

/**
 * Optional contention recorder for the baseline network: the
 * hardware-routed analogue of the SSN blame sink. At every output
 * grant it decomposes the packet's queueing wait — ready at the head
 * of an input FIFO (or the injection queue) to depart — into
 * per-blocking-flow shares by replaying which packets occupied the
 * granted transmitter over that span; the uncovered remainder
 * (arbitration losses, credit stalls) is charged to margin. Emits
 * the same tsm-blame-v1 shape as the SSN path with source
 * "hw_router" — the point is the contrast: this document varies with
 * the router seed, the SSN document is byte-identical across seeds.
 */
class HwBlameRecorder
{
  public:
    /** Record a grant of `link` at `router` to `flow`. */
    void onGrant(LinkId link, TspId router, unsigned port, FlowId flow,
                 Tick ready, Tick depart, Tick until);

    /** The tsm-blame-v1 document (source "hw_router"). */
    Json report(const std::string &bench, std::uint64_t seed) const;

  private:
    struct Interval
    {
        Tick start;
        Tick end;
        FlowId flow;
    };

    struct LinkTotals
    {
        std::uint64_t grants = 0;
        Tick waitPs = 0;
        Tick blamedPs = 0;
    };

    /** Transmitter occupancy history per (router, output port). */
    std::map<std::pair<TspId, unsigned>, std::vector<Interval>> occ_;
    std::map<FlowId, std::map<FlowId, Tick>> flowPairs_;
    std::map<LinkId, std::map<FlowId, Tick>> linkFlows_;
    std::map<LinkId, LinkTotals> links_;
    ContentionGrid grid_;
    std::uint64_t grants_ = 0;
    Tick waitPs_ = 0;
    Tick blamedPs_ = 0;
};

/** Routing policy of the baseline router. */
enum class HwRouting : std::uint8_t
{
    DeterministicMinimal, ///< always the first minimal output
    ObliviousMinimal,     ///< uniform-random among minimal outputs
    AdaptiveMinimal,      ///< minimal output with most credits
};

/** Baseline router configuration. */
struct HwConfig
{
    HwRouting routing = HwRouting::ObliviousMinimal;

    /** Downstream buffer depth per input VC, in packets (credits). */
    unsigned queueDepth = 8;

    /**
     * Virtual channels per port (paper §4.4: hardware torus networks
     * need VCs to break the cyclic channel dependencies around the
     * ring; SSN needs none). With > 1 VC the classic dateline rule
     * applies: a packet crossing the wrap-around link between the
     * highest-numbered TSP and TSP 0 moves up one VC.
     */
    unsigned numVcs = 1;
};

/**
 * The dynamically routed network. Inject packets, run the event
 * queue, read the statistics.
 */
class HwRoutedNetwork
{
  public:
    HwRoutedNetwork(const Topology &topo, EventQueue &eq, const Rng &rng,
                    HwConfig config = {});

    /**
     * Inject a message of `vectors` packets from src toward dst
     * starting at tick `when` (packets enter the source's injection
     * queue at line rate).
     */
    void inject(FlowId flow, TspId src, TspId dst, std::uint32_t vectors,
                Tick when);

    /** Packets delivered to their destinations so far. */
    std::uint64_t delivered() const { return delivered_; }

    /** Packets injected so far. */
    std::uint64_t injected() const { return injected_; }

    /**
     * Packets wedged in the network: call after the event queue has
     * drained. Nonzero means the network deadlocked — packets hold
     * buffers while waiting for buffers in a cycle (paper §4.4).
     */
    std::uint64_t stuck() const { return injected_ - delivered_; }

    /** Per-packet network latency samples (ns). */
    const SampleSet &packetLatencyNs() const { return latency_; }

    /** Completion tick of a flow (last packet delivered). */
    Tick flowCompletion(FlowId f) const;

    /** Attach a contention recorder (borrowed; may be null). */
    void setBlame(HwBlameRecorder *blame) { blame_ = blame; }

  private:
    struct Packet
    {
        FlowId flow = kFlowInvalid;
        std::uint32_t seq = 0;
        TspId dst = kTspInvalid;
        Tick injected = 0;
        Tick ready = 0; ///< when it reached the head-eligible queue
        unsigned vc = 0;
    };

    /**
     * One router node: an injection queue plus one FIFO per (input
     * port, VC), and per-(output port, VC) credits plus per-output
     * busy state.
     */
    struct RouterState
    {
        std::deque<Packet> injection;
        std::vector<std::deque<Packet>> inputs; // [port * numVcs + vc]
        std::vector<unsigned> credits;          // [port * numVcs + vc]
        std::vector<Tick> outputBusyUntil;      // per output port
        unsigned rrPointer = 0;
    };

    /** Index of (port, vc) in the per-router arrays. */
    std::size_t
    pv(unsigned port, unsigned vc) const
    {
        return std::size_t(port) * config_.numVcs + vc;
    }

    /** VC a packet uses after traversing `link` from `from`. */
    unsigned nextVc(const Packet &pkt, LinkId link, TspId from) const;

    /** Minimal output ports at `at` toward `dst` (link ids). */
    const std::vector<LinkId> &minimalOutputs(TspId at, TspId dst);

    /** Try to forward a packet through (router, output link). */
    void tryForward(TspId router, LinkId out);

    /** Kick every output of a router that might now make progress. */
    void kick(TspId router);

    /** Handle a packet landing at `router` via input link `in`. */
    void arrive(TspId router, LinkId in, Packet pkt);

    const Topology *topo_;
    EventQueue *eventq_;
    Rng rng_;
    std::uint64_t seed_;
    HwConfig config_;
    HwBlameRecorder *blame_ = nullptr;

    std::vector<RouterState> routers_;
    std::uint64_t delivered_ = 0;
    std::uint64_t injected_ = 0;
    SampleSet latency_;
    std::unordered_map<FlowId, Tick> flowDone_;
    std::unordered_map<FlowId, std::uint64_t> flowOutstanding_;

    /** Cache: (dst) -> per-tsp minimal output link lists. */
    std::unordered_map<TspId, std::vector<std::vector<LinkId>>> routeCache_;
};

} // namespace tsm

#endif // TSM_BASELINE_HW_ROUTER_HH
