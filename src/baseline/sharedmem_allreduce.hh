/**
 * @file
 * Cost model of a GPU-style shared-memory All-Reduce — the Fig 16
 * comparison baseline.
 *
 * Paper §5.3: "A GPU or CPU system with shared-memory semantics will
 * communicate results via shared DRAM, and requires a flag (mutex) to
 * indicate when the data is produced ... a memory fence is required".
 * We model an NVSwitch-connected 8-GPU ring all-reduce (the nccl-tests
 * setup of the paper's footnote): time = latency term + bandwidth
 * term, where the latency term carries the kernel-launch and
 * flag/fence mailbox overheads per step that the Groq system does not
 * pay, and the bandwidth term uses the per-GPU NVLink bandwidth.
 */

#ifndef TSM_BASELINE_SHAREDMEM_ALLREDUCE_HH
#define TSM_BASELINE_SHAREDMEM_ALLREDUCE_HH

#include <cstdint>

#include "common/units.hh"

namespace tsm {

/** 8x A100 + NVSwitch system description. */
struct GpuAllReduceModel
{
    unsigned gpus = 8;

    /** Per-GPU NVLink bandwidth (the paper: 300 GB/s via NVSwitch). */
    double linkBytesPerSec = 300e9;

    /**
     * Fixed software overhead per invocation: kernel launch + stream
     * sync (~10 us for nccl on this class of system).
     */
    double launchOverheadSec = 10e-6;

    /**
     * Per-step mailbox cost: producer writes data, fences, writes the
     * flag; consumer spins on the flag. Paid 2(n-1) times in a ring.
     */
    double mailboxOverheadSec = 1.2e-6;

    /** Fraction of link bandwidth realizable in steady state. */
    double bandwidthEfficiency = 0.85;
};

/** Prediction for one all-reduce invocation. */
struct AllReduceEstimate
{
    double seconds = 0.0;

    /** nccl-tests "bus bandwidth": 2 (n-1)/n S / t. */
    double busBandwidthBytesPerSec = 0.0;
};

/** Ring all-reduce estimate for a tensor of `bytes` on the model. */
AllReduceEstimate gpuRingAllReduce(const GpuAllReduceModel &model,
                                   Bytes bytes);

/**
 * The same model with the per-GPU bandwidth normalized down to the
 * TSP's pin bandwidth — the paper's "A100 (normalized)" series, which
 * isolates the protocol overhead from the raw pin advantage.
 */
AllReduceEstimate gpuRingAllReduceNormalized(const GpuAllReduceModel &model,
                                             Bytes bytes,
                                             double tsp_bytes_per_sec);

} // namespace tsm

#endif // TSM_BASELINE_SHAREDMEM_ALLREDUCE_HH
