#include "baseline/gpu_matmul.hh"

#include "common/log.hh"

namespace tsm {

GpuGemmEstimate
gpuGemmUtilization(const GpuModel &gpu, std::uint64_t m, std::uint64_t k,
                   std::uint64_t n)
{
    TSM_ASSERT(m && k && n, "degenerate GEMM shape");
    GpuGemmEstimate est;
    const std::uint64_t tiles_m = (m + gpu.tileM - 1) / gpu.tileM;
    const std::uint64_t tiles_n = (n + gpu.tileN - 1) / gpu.tileN;
    est.tiles = tiles_m * tiles_n;
    est.waves = (est.tiles + gpu.sms - 1) / gpu.sms;

    // Useful work vs machine-time spent: every wave costs a full
    // gpu.sms * tile FLOPs worth of machine time; edge tiles do padded
    // work.
    const double useful = double(m) * double(n) * double(k);
    const double machine = double(est.waves) * double(gpu.sms) *
                           double(gpu.tileM) * double(gpu.tileN) *
                           double(k);
    est.utilization = gpu.efficiencyCeiling * useful / machine;
    est.tflops = est.utilization * gpu.peakFp16Tflops;
    return est;
}

double
TspMatmulModel::peakFp16Tflops() const
{
    // Each sub-op is [1 x K'] x [K' x 320]: 2*K'*320 flops.
    const double flops_per_cycle =
        2.0 * tileK * tileN * subopsPerCycle;
    return flops_per_cycle * clockGhz * 1e9 / 1e12;
}

TspGemmEstimate
tspGemmUtilization(const TspMatmulModel &tsp, std::uint64_t m,
                   std::uint64_t k, std::uint64_t n)
{
    TSM_ASSERT(m && k && n, "degenerate GEMM shape");
    TspGemmEstimate est;
    const std::uint64_t n_tiles = (n + tsp.tileN - 1) / tsp.tileN;
    const std::uint64_t k_tiles = (k + tsp.tileK - 1) / tsp.tileK;
    // One sub-op per (row, n-tile, k-tile).
    est.subops = m * n_tiles * k_tiles;
    est.cycles = (est.subops + tsp.subopsPerCycle - 1) / tsp.subopsPerCycle;

    const double useful = double(m) * double(n) * double(k);
    const double machine = double(est.subops) * double(tsp.tileK) *
                           double(tsp.tileN);
    est.utilization = useful / machine;
    est.tflops = est.utilization * tsp.peakFp16Tflops();
    return est;
}

} // namespace tsm
