#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace tsm {

namespace {

const Json kNullJson;

/**
 * Fixed-point double formatting with trailing-zero trimming: enough
 * digits to be useful, few enough to be readable, and — critically —
 * deterministic for identical inputs.
 */
std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan; reports never produce them
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    std::string s = buf;
    while (s.size() > 1 && s.back() == '0')
        s.pop_back();
    if (s.back() == '.')
        s.push_back('0');
    return s;
}

/** Append one Unicode code point to `out` as UTF-8 (1-4 bytes). */
void
appendUtf8(std::string &out, std::uint32_t cp)
{
    if (cp < 0x80) {
        out.push_back(char(cp));
    } else if (cp < 0x800) {
        out.push_back(char(0xc0 | (cp >> 6)));
        out.push_back(char(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
        out.push_back(char(0xe0 | (cp >> 12)));
        out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
        out.push_back(char(0x80 | (cp & 0x3f)));
    } else {
        out.push_back(char(0xf0 | (cp >> 18)));
        out.push_back(char(0x80 | ((cp >> 12) & 0x3f)));
        out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
        out.push_back(char(0x80 | (cp & 0x3f)));
    }
}

void
escapeTo(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Strict recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    Json
    run()
    {
        Json v = value();
        skipWs();
        if (ok_ && pos_ != text_.size())
            fail("trailing characters after document");
        return ok_ ? std::move(v) : Json();
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_ && error_)
            *error_ = why + " at offset " + std::to_string(pos_);
        ok_ = false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return {};
        }
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return {};
        }
        return number();
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            if (!consume(*p)) {
                fail(std::string("bad literal, expected \"") + word + '"');
                return;
            }
    }

    Json
    boolean()
    {
        if (text_[pos_] == 't') {
            literal("true");
            return Json(true);
        }
        literal("false");
        return Json(false);
    }

    Json
    number()
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return {};
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.find_first_of(".eE") == std::string::npos) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (end == tok.c_str() + tok.size() && errno == 0)
                return Json(std::int64_t(v));
        }
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            fail("malformed number \"" + tok + '"');
            return {};
        }
        return Json(d);
    }

    /**
     * Read exactly four hex digits of a \uXXXX escape; -1 (with the
     * parse failed) on truncation or a non-hex digit.
     */
    long
    hex4()
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return -1;
        }
        long cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= h - '0';
            else if (h >= 'a' && h <= 'f')
                cp |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F')
                cp |= h - 'A' + 10;
            else {
                fail(std::string("bad hex digit '") + h +
                     "' in \\u escape");
                return -1;
            }
        }
        return cp;
    }

    std::string
    string()
    {
        std::string out;
        consume('"');
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case 'r': out.push_back('\r'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'u': {
                    long cp = hex4();
                    if (cp < 0)
                        return out;
                    if (cp >= 0xdc00 && cp <= 0xdfff) {
                        fail("lone low surrogate in \\u escape");
                        return out;
                    }
                    if (cp >= 0xd800 && cp <= 0xdbff) {
                        // High surrogate: a \uDC00-\uDFFF low half
                        // must follow to form one code point.
                        if (pos_ + 2 > text_.size() ||
                            text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("unpaired high surrogate in \\u escape");
                            return out;
                        }
                        pos_ += 2;
                        const long lo = hex4();
                        if (lo < 0)
                            return out;
                        if (lo < 0xdc00 || lo > 0xdfff) {
                            fail("high surrogate not followed by a low "
                                 "surrogate");
                            return out;
                        }
                        cp = 0x10000 + ((cp - 0xd800) << 10) +
                             (lo - 0xdc00);
                    }
                    appendUtf8(out, std::uint32_t(cp));
                    break;
                  }
                  default: fail("bad escape"); return out;
                }
            } else {
                out.push_back(c);
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    array()
    {
        Json out = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        for (;;) {
            out.push(value());
            if (!ok_)
                return out;
            skipWs();
            if (consume(']'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return out;
            }
        }
    }

    Json
    object()
    {
        Json out = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return out;
            }
            std::string key = string();
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return out;
            }
            out.set(key, value());
            if (!ok_)
                return out;
            skipWs();
            if (consume('}'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return out;
            }
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace

Json::Json(std::uint64_t v)
{
    if (v <= std::uint64_t(INT64_MAX)) {
        kind_ = Kind::Int;
        int_ = std::int64_t(v);
    } else {
        kind_ = Kind::Double;
        dbl_ = double(v);
    }
}

Json::Json(double v)
{
    // Store integral doubles as exact integers so counters that pass
    // through double arithmetic still print exactly.
    if (std::isfinite(v) && std::nearbyint(v) == v &&
        std::abs(v) < 9.0e15) {
        kind_ = Kind::Int;
        int_ = std::int64_t(v);
    } else {
        kind_ = Kind::Double;
        dbl_ = v;
    }
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::boolean() const
{
    TSM_ASSERT(kind_ == Kind::Bool, "not a boolean");
    return bool_;
}

std::int64_t
Json::integer() const
{
    TSM_ASSERT(kind_ == Kind::Int, "not an integer");
    return int_;
}

double
Json::number() const
{
    TSM_ASSERT(isNumber(), "not a number");
    return kind_ == Kind::Int ? double(int_) : dbl_;
}

const std::string &
Json::str() const
{
    TSM_ASSERT(kind_ == Kind::String, "not a string");
    return str_;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

Json &
Json::push(Json v)
{
    TSM_ASSERT(kind_ == Kind::Array, "push on a non-array");
    arr_.push_back(std::move(v));
    return *this;
}

const Json &
Json::at(std::size_t i) const
{
    TSM_ASSERT(kind_ == Kind::Array && i < arr_.size(),
               "array index out of range");
    return arr_[i];
}

const std::vector<Json> &
Json::items() const
{
    TSM_ASSERT(kind_ == Kind::Array, "not an array");
    return arr_;
}

Json &
Json::set(const std::string &key, Json v)
{
    TSM_ASSERT(kind_ == Kind::Object, "set on a non-object");
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const Json &
Json::operator[](const std::string &key) const
{
    if (kind_ == Kind::Object)
        for (const auto &[k, v] : obj_)
            if (k == key)
                return v;
    return kNullJson;
}

bool
Json::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return true;
    return false;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    TSM_ASSERT(kind_ == Kind::Object, "not an object");
    return obj_;
}

void
Json::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    const auto newline = [&](unsigned d) {
        if (indent == 0)
            return;
        out.push_back('\n');
        out.append(std::size_t(indent) * d, ' ');
    };

    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Int: out += std::to_string(int_); break;
      case Kind::Double: out += formatDouble(dbl_); break;
      case Kind::String: escapeTo(out, str_); break;

      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;

      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            escapeTo(out, obj_[i].first);
            out.push_back(':');
            if (indent)
                out.push_back(' ');
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text, error).run();
}

} // namespace tsm
