/**
 * @file
 * Tool identity for the --version flag every tsm_* tool carries.
 *
 * The tools are versioned by the document schemas they understand,
 * not by a release number: a tool and a document are compatible iff
 * the document's "schema" tag is in the tool's supported list, and
 * that list is exactly what --version prints. Scripts can therefore
 * probe compatibility before feeding artifacts across tool versions.
 */

#ifndef TSM_COMMON_VERSION_HH
#define TSM_COMMON_VERSION_HH

#include <initializer_list>
#include <string>

namespace tsm {

/**
 * One-line identity: "NAME (tsm; supports SCHEMA1, SCHEMA2)\n".
 * `schemas` may be empty for tools that read no documents.
 */
std::string toolVersionLine(const char *tool,
                            std::initializer_list<const char *> schemas);

} // namespace tsm

#endif // TSM_COMMON_VERSION_HH
