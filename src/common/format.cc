#include "common/format.hh"

#include <cstdio>
#include <stdexcept>

namespace tsm {
namespace detail {

namespace {

struct Spec
{
    char fill = ' ';
    char align = 0; // 0 = default ('<' strings, '>' numbers)
    int width = -1;
    int precision = -1;
    char type = 0; // 'f', 'd', 'x', 'e', 'g' or 0
    bool dynamicWidth = false;
    bool dynamicPrecision = false;
};

[[noreturn]] void
bad(const char *what)
{
    throw std::runtime_error(std::string("tsm::format: ") + what);
}

/** Parse the text between ':' and '}' of a replacement field. */
Spec
parseSpec(std::string_view s)
{
    Spec spec;
    std::size_t i = 0;
    // fill+align
    if (s.size() >= 2 && (s[1] == '<' || s[1] == '>' || s[1] == '^')) {
        spec.fill = s[0];
        spec.align = s[1];
        i = 2;
    } else if (!s.empty() && (s[0] == '<' || s[0] == '>' || s[0] == '^')) {
        spec.align = s[0];
        i = 1;
    }
    // width
    if (i < s.size() && s[i] == '{') {
        if (i + 1 >= s.size() || s[i + 1] != '}')
            bad("malformed dynamic width");
        spec.dynamicWidth = true;
        i += 2;
    } else {
        int w = -1;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            w = (w < 0 ? 0 : w) * 10 + (s[i] - '0');
            ++i;
        }
        spec.width = w;
    }
    // precision
    if (i < s.size() && s[i] == '.') {
        ++i;
        if (i < s.size() && s[i] == '{') {
            if (i + 1 >= s.size() || s[i + 1] != '}')
                bad("malformed dynamic precision");
            spec.dynamicPrecision = true;
            i += 2;
        } else {
            int p = 0;
            bool any = false;
            while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
                p = p * 10 + (s[i] - '0');
                ++i;
                any = true;
            }
            if (!any)
                bad("missing precision digits");
            spec.precision = p;
        }
    }
    // presentation type
    if (i < s.size()) {
        spec.type = s[i];
        ++i;
    }
    if (i != s.size())
        bad("trailing characters in format spec");
    return spec;
}

std::string
renderValue(const FormatArg &arg, const Spec &spec)
{
    char buf[64];
    if (std::holds_alternative<double>(arg.value)) {
        const double v = std::get<double>(arg.value);
        const int prec = spec.precision >= 0 ? spec.precision : 6;
        const char t = spec.type ? spec.type : (spec.precision >= 0 ? 'f'
                                                                    : 'g');
        switch (t) {
          case 'f':
            std::snprintf(buf, sizeof buf, "%.*f", prec, v);
            break;
          case 'e':
            std::snprintf(buf, sizeof buf, "%.*e", prec, v);
            break;
          case 'g':
            std::snprintf(buf, sizeof buf, "%.*g", prec, v);
            break;
          default:
            bad("unsupported float presentation type");
        }
        return buf;
    }
    if (std::holds_alternative<std::int64_t>(arg.value)) {
        const auto v = std::get<std::int64_t>(arg.value);
        if (spec.type == 'x')
            std::snprintf(buf, sizeof buf, "%llx", (long long)v);
        else
            std::snprintf(buf, sizeof buf, "%lld", (long long)v);
        return buf;
    }
    if (std::holds_alternative<std::uint64_t>(arg.value)) {
        const auto v = std::get<std::uint64_t>(arg.value);
        if (spec.type == 'x')
            std::snprintf(buf, sizeof buf, "%llx", (unsigned long long)v);
        else
            std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
        return buf;
    }
    if (std::holds_alternative<char>(arg.value))
        return std::string(1, std::get<char>(arg.value));
    if (std::holds_alternative<bool>(arg.value))
        return std::get<bool>(arg.value) ? "true" : "false";
    return std::get<std::string>(arg.value);
}

bool
isNumeric(const FormatArg &arg)
{
    return std::holds_alternative<double>(arg.value) ||
           std::holds_alternative<std::int64_t>(arg.value) ||
           std::holds_alternative<std::uint64_t>(arg.value);
}

int
argAsInt(const FormatArg &arg)
{
    if (std::holds_alternative<std::int64_t>(arg.value))
        return int(std::get<std::int64_t>(arg.value));
    if (std::holds_alternative<std::uint64_t>(arg.value))
        return int(std::get<std::uint64_t>(arg.value));
    bad("dynamic width/precision argument is not integral");
}

} // namespace

std::string
vformat(std::string_view fmt, const std::vector<FormatArg> &args)
{
    std::string out;
    out.reserve(fmt.size() + args.size() * 8);
    std::size_t next_arg = 0;

    for (std::size_t i = 0; i < fmt.size(); ++i) {
        const char c = fmt[i];
        if (c == '{') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
                out += '{';
                ++i;
                continue;
            }
            // Find the matching close brace; dynamic width/precision
            // nests one level of {} inside the field.
            std::size_t close = std::string_view::npos;
            int depth = 0;
            for (std::size_t j = i + 1; j < fmt.size(); ++j) {
                if (fmt[j] == '{') {
                    ++depth;
                } else if (fmt[j] == '}') {
                    if (depth == 0) {
                        close = j;
                        break;
                    }
                    --depth;
                }
            }
            if (close == std::string_view::npos)
                bad("unterminated replacement field");
            std::string_view field = fmt.substr(i + 1, close - i - 1);
            Spec spec;
            if (!field.empty()) {
                if (field[0] != ':')
                    bad("positional arguments are not supported");
                spec = parseSpec(field.substr(1));
            }
            // Automatic indexing: the outer field's '{' appears before
            // any nested '{}', so the value argument precedes dynamic
            // width/precision arguments (matching std::format).
            if (next_arg >= args.size())
                bad("not enough arguments");
            const FormatArg &arg = args[next_arg++];
            if (spec.dynamicWidth) {
                if (next_arg >= args.size())
                    bad("missing dynamic width argument");
                spec.width = argAsInt(args[next_arg++]);
            }
            if (spec.dynamicPrecision) {
                if (next_arg >= args.size())
                    bad("missing dynamic precision argument");
                spec.precision = argAsInt(args[next_arg++]);
            }
            std::string rendered = renderValue(arg, spec);
            if (spec.width > 0 && int(rendered.size()) < spec.width) {
                const auto pad =
                    std::size_t(spec.width) - rendered.size();
                char align = spec.align;
                if (align == 0)
                    align = isNumeric(arg) ? '>' : '<';
                if (align == '>') {
                    rendered.insert(0, pad, spec.fill);
                } else if (align == '<') {
                    rendered.append(pad, spec.fill);
                } else { // '^'
                    rendered.insert(0, pad / 2, spec.fill);
                    rendered.append(pad - pad / 2, spec.fill);
                }
            }
            out += rendered;
            i = close;
        } else if (c == '}') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '}')
                ++i;
            out += '}';
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace detail
} // namespace tsm
