/**
 * @file
 * Fundamental units and physical constants of the simulated system.
 *
 * All simulated time is kept in picoseconds (`Tick`) so that chips with
 * independent, slightly-drifting clocks can coexist on one global
 * timeline — the situation the paper's HAC/SAC machinery exists to
 * manage. Core-clock cycles are a per-chip derived unit (see
 * sim/clock.hh).
 */

#ifndef TSM_COMMON_UNITS_HH
#define TSM_COMMON_UNITS_HH

#include <cstdint>

namespace tsm {

/** Global simulated time in picoseconds. */
using Tick = std::uint64_t;

/** An invalid/unset tick value. */
inline constexpr Tick kTickInvalid = ~Tick(0);

/** Picoseconds per common time units. */
inline constexpr Tick kPsPerNs = 1'000;
inline constexpr Tick kPsPerUs = 1'000'000;
inline constexpr Tick kPsPerMs = 1'000'000'000;
inline constexpr Tick kPsPerSec = 1'000'000'000'000ULL;

/** Cycle count within a single chip's clock domain. */
using Cycle = std::uint64_t;

/** Bytes. */
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/**
 * Nominal TSP core frequency (paper §5.2: "each TSP operating at
 * 900MHz").
 */
inline constexpr double kCoreFreqHz = 900e6;

/** Nominal core clock period in picoseconds (1111.1ps at 900 MHz). */
inline constexpr double kCorePeriodPs = 1e12 / kCoreFreqHz;

/**
 * Geometry of a TSP's on-chip SRAM, addressable as the rank-5 tensor
 * [Device, Hemisphere, Slice, Bank, Offset] (paper Fig 3). One address
 * holds one 320-byte vector.
 */
inline constexpr unsigned kHemispheres = 2;
inline constexpr unsigned kSlicesPerHemisphere = 44;
inline constexpr unsigned kBanksPerSlice = 2;
inline constexpr unsigned kWordsPerBank = 4096;

/** SIMD width: one vector spans 320 byte-lanes (20 tiles x 16 lanes). */
inline constexpr unsigned kVectorBytes = 320;

/** Vector elements for fp16 operands (2 bytes/element). */
inline constexpr unsigned kVectorLanesFp16 = 160;

/** Vector elements for int8 operands. */
inline constexpr unsigned kVectorLanesInt8 = 320;

/** Local SRAM per TSP: 2 x 44 x 2 x 4096 x 320 B = 220 MiB. */
inline constexpr Bytes kLocalMemBytes =
    Bytes(kHemispheres) * kSlicesPerHemisphere * kBanksPerSlice *
    kWordsPerBank * kVectorBytes;

static_assert(kLocalMemBytes == 220 * kMiB,
              "paper: each TSP contributes 220 MiBytes of global memory");

/** C2C link: 4 lanes x 25 Gbps = 100 Gbps per direction (paper §2.3). */
inline constexpr unsigned kC2cLanesPerLink = 4;
inline constexpr double kC2cLaneGbps = 25.0;
inline constexpr double kC2cLinkGbps = kC2cLanesPerLink * kC2cLaneGbps;

/** C2C link payload bandwidth in bytes/second. */
inline constexpr double kC2cLinkBytesPerSec = kC2cLinkGbps * 1e9 / 8.0;

/**
 * Wire format of one vector: 320 B payload + 8 B framing for a 97.5%
 * encoding efficiency (paper Fig 11: 320/328 bytes).
 */
inline constexpr Bytes kVectorWireBytes = 328;

/** Serialization time of one wire vector on a 100 Gbps link. */
inline constexpr double kVectorSerializationPs =
    double(kVectorWireBytes) * 8.0 / (kC2cLinkGbps * 1e9) * 1e12; // 26240 ps

/** Ports per TSP: 7 "local" + 4 "global" C2C links (paper §2.2). */
inline constexpr unsigned kLocalPortsPerTsp = 7;
inline constexpr unsigned kGlobalPortsPerTsp = 4;
inline constexpr unsigned kPortsPerTsp =
    kLocalPortsPerTsp + kGlobalPortsPerTsp;

/** TSPs per node (4U chassis). */
inline constexpr unsigned kTspsPerNode = 8;

/** Nodes per rack; one of the nine is the N+1 hot spare (paper §4.5). */
inline constexpr unsigned kNodesPerRack = 9;

/** Max nodes in a single-level (node-as-group) Dragonfly: 33 (264 TSPs). */
inline constexpr unsigned kMaxNodesSingleLevel = 33;

/** Max racks in the two-level (rack-as-group) Dragonfly: 145. */
inline constexpr unsigned kMaxRacks = 145;

/**
 * HAC epoch: the hardware aligned counter is an 8-bit counter with 4
 * values reserved for control codes, so it overflows every 252 core
 * cycles (paper §3.2 footnote).
 */
inline constexpr unsigned kHacPeriodCycles = 252;

/** PCIe Gen4 x16 host link payload bandwidth (~25.6 GB/s usable). */
inline constexpr double kPcieGen4x16BytesPerSec = 25.6e9;

/** Convert a byte count to the number of 320 B vectors that carry it. */
constexpr std::uint64_t
bytesToVectors(Bytes bytes)
{
    return (bytes + kVectorBytes - 1) / kVectorBytes;
}

/** Convert picoseconds to (fractional) nanoseconds. */
constexpr double
psToNs(double ps)
{
    return ps / double(kPsPerNs);
}

/** Convert picoseconds to (fractional) microseconds. */
constexpr double
psToUs(double ps)
{
    return ps / double(kPsPerUs);
}

} // namespace tsm

#endif // TSM_COMMON_UNITS_HH
