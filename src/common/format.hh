/**
 * @file
 * Minimal std::format-style string formatting.
 *
 * The toolchain available here (GCC 12) does not ship <format>, so this
 * header provides the small subset the simulator uses:
 *
 *   {}            default formatting of the next argument
 *   {:.Nf}        fixed-point with N digits
 *   {:Wd}/{:W}    minimum width W, right-aligned (numbers) by default
 *   {:<W} {:>W}   explicit alignment
 *   {:{}} {:.{}}  dynamic width/precision consumed from the arg list
 *   {{ and }}     literal braces
 *
 * Formatting is runtime-checked: a malformed string or arity mismatch
 * throws std::runtime_error (callers are internal; a throw here is a
 * programming error surfaced loudly in tests).
 */

#ifndef TSM_COMMON_FORMAT_HH
#define TSM_COMMON_FORMAT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace tsm {

namespace detail {

/** A type-erased format argument. */
struct FormatArg
{
    std::variant<std::int64_t, std::uint64_t, double, std::string, char,
                 bool>
        value;

    template <typename T>
    static FormatArg
    make(T &&v)
    {
        using U = std::decay_t<T>;
        FormatArg a;
        if constexpr (std::is_same_v<U, bool>) {
            a.value = v;
        } else if constexpr (std::is_same_v<U, char>) {
            a.value = v;
        } else if constexpr (std::is_enum_v<U>) {
            a.value = std::int64_t(v);
        } else if constexpr (std::is_integral_v<U> && std::is_signed_v<U>) {
            a.value = std::int64_t(v);
        } else if constexpr (std::is_integral_v<U>) {
            a.value = std::uint64_t(v);
        } else if constexpr (std::is_floating_point_v<U>) {
            a.value = double(v);
        } else if constexpr (std::is_convertible_v<U, std::string_view>) {
            a.value = std::string(std::string_view(v));
        } else {
            static_assert(std::is_convertible_v<U, std::string_view>,
                          "unformattable argument type");
        }
        return a;
    }
};

/** Core formatter over type-erased arguments. */
std::string vformat(std::string_view fmt, const std::vector<FormatArg> &args);

} // namespace detail

/** Format `fmt` with the given arguments (see file comment for subset). */
template <typename... Args>
std::string
format(std::string_view fmt, Args &&...args)
{
    std::vector<detail::FormatArg> v;
    v.reserve(sizeof...(Args));
    (v.push_back(detail::FormatArg::make(std::forward<Args>(args))), ...);
    return detail::vformat(fmt, v);
}

} // namespace tsm

#endif // TSM_COMMON_FORMAT_HH
