/**
 * @file
 * Minimal JSON document model used by the profiling layer.
 *
 * The writer is what matters here: profile reports must be *stable* —
 * object keys keep insertion order, integers print exactly, doubles
 * print with a fixed shortest-fixed-point rule — so that two same-seed
 * runs emit byte-identical `BENCH_*.json` files and golden tests can
 * diff them directly. The reader is a small strict recursive-descent
 * parser, enough for `tsm_report` to reload a report and for tests to
 * round-trip. `\uXXXX` escapes decode to UTF-8 (surrogate pairs
 * included); malformed escapes — bad hex digits, truncation, lone or
 * unpaired surrogates — are parse errors, never silent replacements,
 * so escaped strings survive parse -> serialize -> parse byte-stably.
 */

#ifndef TSM_COMMON_JSON_HH
#define TSM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tsm {

/** One JSON value; objects preserve key insertion order. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< exact signed 64-bit integer
        Double, ///< non-integral number
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Int), int_(std::int64_t(v)) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(std::uint64_t v);
    Json(double v);
    Json(const char *s) : kind_(Kind::String), str_(s) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    /// @name Typed access (asserts on kind mismatch)
    /// @{
    bool boolean() const;
    std::int64_t integer() const;

    /** Any number as a double. */
    double number() const;

    const std::string &str() const;
    /// @}

    /// @name Arrays
    /// @{
    std::size_t size() const;
    Json &push(Json v);
    const Json &at(std::size_t i) const;
    const std::vector<Json> &items() const;
    /// @}

    /// @name Objects
    /// @{

    /** Set key (appends; replaces in place if the key exists). */
    Json &set(const std::string &key, Json v);

    /** Member access; null sentinel when absent. */
    const Json &operator[](const std::string &key) const;

    /** True if the object has `key`. */
    bool has(const std::string &key) const;

    const std::vector<std::pair<std::string, Json>> &members() const;
    /// @}

    /**
     * Serialize. With indent > 0, pretty-print using that many spaces
     * per level; 0 emits the compact one-line form. Output is a pure
     * function of the document: stable across runs and platforms.
     */
    std::string dump(unsigned indent = 0) const;

    /**
     * Parse a complete JSON document. On failure returns a Null value
     * and, when `error` is non-null, stores a message with the byte
     * offset of the problem.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, unsigned indent, unsigned depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace tsm

#endif // TSM_COMMON_JSON_HH
