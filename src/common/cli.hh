/**
 * @file
 * Shared command-line flag parsing for the bench binaries, examples
 * and tools.
 *
 * Every binary registers the flags it understands; parse() strips the
 * recognized ones from argv (so downstream parsers such as
 * google-benchmark never see them) and *rejects* anything unrecognized
 * with a clear error on stderr — a silently ignored flag means a bench
 * run measured something other than what was asked for. Binaries that
 * hand leftover arguments to another parser whitelist them by prefix
 * (micro_harness allows "--benchmark_").
 */

#ifndef TSM_COMMON_CLI_HH
#define TSM_COMMON_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tsm {

/** Declarative flag registry with strict unknown-flag rejection. */
class CliParser
{
  public:
    /** @param prog Program name used in error/usage messages. */
    explicit CliParser(std::string prog) : prog_(std::move(prog)) {}

    /** Register a boolean flag: `--name` sets *out to true. */
    void addFlag(std::string name, bool *out, std::string help = "");

    /** Register a value flag: `--name=VALUE` stores VALUE in *out. */
    void addValue(std::string name, std::string *out,
                  std::string help = "");

    /** Register an unsigned value flag: `--name=N`. */
    void addValue(std::string name, unsigned *out, std::string help = "");

    /** Register a 64-bit unsigned value flag: `--name=N` (seeds). */
    void addValue(std::string name, std::uint64_t *out,
                  std::string help = "");

    /** Register a floating-point value flag: `--name=X` (rates). */
    void addValue(std::string name, double *out, std::string help = "");

    /**
     * Register a list-valued flag: `--name=a,b,c` appends the
     * comma-separated items to *out. Repeating the flag appends
     * further items; empty items (`--name=a,,b` or a trailing comma)
     * are rejected as malformed.
     */
    void addList(std::string name, std::vector<std::string> *out,
                 std::string help = "");

    /**
     * Let arguments starting with `prefix` pass through unparsed (they
     * stay in argv for a downstream parser).
     */
    void allowPrefix(std::string prefix);

    /**
     * Let arguments not starting with '-' pass through as positional
     * operands (they stay in argv). Off by default: a bench binary
     * takes no operands, so a stray word is an error.
     */
    void allowPositional() { positionals_ = true; }

    /**
     * Scan argv, consuming registered flags in place (argc is
     * updated). On an unknown or malformed argument, print an error
     * and the known-flag list to stderr and return false — callers
     * must then exit non-zero. `--help` prints usage to stdout and
     * also returns false.
     */
    bool parse(int &argc, char **argv);

    /** One-line-per-flag usage text. */
    std::string usage() const;

  private:
    struct Flag
    {
        std::string name; ///< including leading dashes, e.g. "--trace"
        bool *boolOut = nullptr;
        std::string *strOut = nullptr;
        unsigned *uintOut = nullptr;
        std::uint64_t *u64Out = nullptr;
        double *doubleOut = nullptr;
        std::vector<std::string> *listOut = nullptr;
        std::string help;

        bool takesValue() const { return boolOut == nullptr; }
    };

    std::string prog_;
    std::vector<Flag> flags_;
    std::vector<std::string> prefixes_;
    bool positionals_ = false;
};

} // namespace tsm

#endif // TSM_COMMON_CLI_HH
