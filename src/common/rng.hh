/**
 * @file
 * Deterministic random number generation.
 *
 * The simulator must be reproducible: two runs with the same seed produce
 * byte-identical results (a core invariant of the paper's deterministic
 * system, and of any credible simulation). We therefore use a fixed,
 * self-contained xoshiro256** implementation rather than std::mt19937
 * so results do not depend on the standard library vendor.
 */

#ifndef TSM_COMMON_RNG_HH
#define TSM_COMMON_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

namespace tsm {

/**
 * xoshiro256** PRNG (Blackman & Vigna), seeded via splitmix64.
 * Deterministic across platforms and standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) for n > 0 (unbiased via rejection). */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in the closed range [lo, hi]. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box–Muller, cached pair). */
    double gaussian();

    /** Normal variate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Fork a child generator whose stream is a deterministic function of
     * this generator's seed and the given stream id — used to give each
     * simulated component an independent but reproducible stream.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::array<std::uint64_t, 4> state_;
    std::uint64_t seed_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace tsm

#endif // TSM_COMMON_RNG_HH
