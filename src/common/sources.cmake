tsm_module(common
    format.cc
    log.cc
    rng.cc
    stats.cc
    table.cc
)
