/**
 * @file
 * Column-aligned ASCII table and CSV emitters used by the benchmark
 * harnesses to print the paper's tables and figure data series.
 */

#ifndef TSM_COMMON_TABLE_HH
#define TSM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace tsm {

/**
 * A simple table: set column headers once, append rows of stringified
 * cells, then render as aligned ASCII or CSV.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format an integer. */
    static std::string num(std::uint64_t v);
    static std::string num(std::int64_t v);
    static std::string num(int v) { return num(std::int64_t(v)); }
    static std::string num(unsigned v) { return num(std::uint64_t(v)); }

    std::size_t numRows() const { return rows_.size(); }

    /** Render with aligned columns and a header separator line. */
    std::string ascii() const;

    /** Render as comma-separated values (no quoting; cells must be clean). */
    std::string csv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tsm

#endif // TSM_COMMON_TABLE_HH
