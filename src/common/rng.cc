#include "common/rng.hh"

namespace tsm {

namespace {

/** splitmix64 step, used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // Avoid the (astronomically unlikely) all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~std::uint64_t(0) - n + 1) % n;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box–Muller transform.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    cachedGaussian_ = mag * std::sin(two_pi * u2);
    hasCachedGaussian_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    std::uint64_t mix = seed_;
    const std::uint64_t a = splitmix64(mix);
    mix ^= stream_id * 0xd2b74407b1ce6e93ULL;
    const std::uint64_t b = splitmix64(mix);
    return Rng(a ^ rotl(b, 23) ^ stream_id);
}

} // namespace tsm
