/**
 * @file
 * Statistics collection: running accumulators (min/mean/max/stddev),
 * fixed-bin histograms, and exact percentile computation. Used to
 * reproduce the paper's Table 2 (HAC latency characterization) and
 * Fig 17 (BERT latency histogram), among others.
 */

#ifndef TSM_COMMON_STATS_HH
#define TSM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tsm {

/**
 * Running scalar statistics with Welford's numerically stable online
 * variance algorithm.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Merge another accumulator's samples into this one. */
    void merge(const Accumulator &other);

    /** Clear all recorded samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

    /** Population variance of the recorded samples. */
    double variance() const;

    /** Sample (n-1) standard deviation, matching the paper's Table 2. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over fixed-width bins covering [lo, hi); samples outside
 * the range are clamped into the first/last bin and counted as
 * underflow/overflow.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the first bin.
     * @param hi Exclusive upper bound of the last bin.
     * @param num_bins Number of equal-width bins (must be > 0).
     */
    Histogram(double lo, double hi, unsigned num_bins);

    /** Record one sample. */
    void add(double x);

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    unsigned numBins() const { return unsigned(bins_.size()); }
    double binWidth() const { return width_; }

    /** Inclusive lower edge of bin i. */
    double binLo(unsigned i) const;

    /** Count in bin i (clamped samples included in edge bins). */
    std::uint64_t binCount(unsigned i) const { return bins_[i]; }

    /** Fraction of all samples at or below the upper edge of bin i. */
    double cumulativeFraction(unsigned i) const;

    /**
     * Smallest value v such that at least `fraction` of samples fall in
     * bins whose upper edge is <= v (bin-resolution percentile).
     */
    double percentile(double fraction) const;

    /** Render as a fixed-width ASCII bar chart, one line per bin. */
    std::string ascii(unsigned max_width = 60, bool skip_empty = true) const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Fixed-bucket base-2 logarithmic histogram over unsigned samples.
 *
 * Bucket b holds samples whose bit width is b: bucket 0 holds the
 * value 0, bucket 1 holds {1}, bucket 2 holds [2,4), bucket b holds
 * [2^(b-1), 2^b). 65 buckets cover the whole uint64 range in constant
 * memory, which makes this the right shape for long-running profiling
 * counters (queueing delays, stall lengths) where an exact SampleSet
 * would grow without bound. Percentiles resolve to a bucket upper
 * bound — a known <=2x overestimate, consistent everywhere.
 */
class Log2Histogram
{
  public:
    /** Number of buckets (bit widths 0..64). */
    static constexpr unsigned kBuckets = 65;

    /** Record one sample. */
    void add(std::uint64_t v);

    /** Merge another histogram's counts into this one. */
    void merge(const Log2Histogram &other);

    /** Clear all recorded samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const;
    std::uint64_t sum() const { return sum_; }

    /** Bucket index a value falls into (its bit width). */
    static unsigned bucketOf(std::uint64_t v);

    /** Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...). */
    static std::uint64_t bucketLo(unsigned b);

    /** Inclusive upper bound of bucket b (0, 1, 3, 7, 15, ...). */
    static std::uint64_t bucketHi(unsigned b);

    /** Count in bucket b. */
    std::uint64_t bucketCount(unsigned b) const { return buckets_[b]; }

    /**
     * Smallest bucket upper bound v such that at least q (in [0,1]) of
     * all samples are <= v; clamped to the exact observed max. 0 when
     * empty.
     */
    std::uint64_t percentile(double q) const;

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p95() const { return percentile(0.95); }
    std::uint64_t p99() const { return percentile(0.99); }

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * Exact percentile over a retained sample set. Memory grows with the
 * sample count; use for bounded experiment sizes.
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const { return samples_.size(); }

    /** Exact q-quantile (q in [0,1]) by nearest-rank; sorts lazily. */
    double percentile(double q) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

} // namespace tsm

#endif // TSM_COMMON_STATS_HH
