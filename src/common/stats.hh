/**
 * @file
 * Statistics collection: running accumulators (min/mean/max/stddev),
 * fixed-bin histograms, and exact percentile computation. Used to
 * reproduce the paper's Table 2 (HAC latency characterization) and
 * Fig 17 (BERT latency histogram), among others.
 */

#ifndef TSM_COMMON_STATS_HH
#define TSM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tsm {

/**
 * Running scalar statistics with Welford's numerically stable online
 * variance algorithm.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Merge another accumulator's samples into this one. */
    void merge(const Accumulator &other);

    /** Clear all recorded samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

    /** Population variance of the recorded samples. */
    double variance() const;

    /** Sample (n-1) standard deviation, matching the paper's Table 2. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over fixed-width bins covering [lo, hi); samples outside
 * the range are clamped into the first/last bin and counted as
 * underflow/overflow.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the first bin.
     * @param hi Exclusive upper bound of the last bin.
     * @param num_bins Number of equal-width bins (must be > 0).
     */
    Histogram(double lo, double hi, unsigned num_bins);

    /** Record one sample. */
    void add(double x);

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    unsigned numBins() const { return unsigned(bins_.size()); }
    double binWidth() const { return width_; }

    /** Inclusive lower edge of bin i. */
    double binLo(unsigned i) const;

    /** Count in bin i (clamped samples included in edge bins). */
    std::uint64_t binCount(unsigned i) const { return bins_[i]; }

    /** Fraction of all samples at or below the upper edge of bin i. */
    double cumulativeFraction(unsigned i) const;

    /**
     * Smallest value v such that at least `fraction` of samples fall in
     * bins whose upper edge is <= v (bin-resolution percentile).
     */
    double percentile(double fraction) const;

    /** Render as a fixed-width ASCII bar chart, one line per bin. */
    std::string ascii(unsigned max_width = 60, bool skip_empty = true) const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Exact percentile over a retained sample set. Memory grows with the
 * sample count; use for bounded experiment sizes.
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const { return samples_.size(); }

    /** Exact q-quantile (q in [0,1]) by nearest-rank; sorts lazily. */
    double percentile(double q) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

} // namespace tsm

#endif // TSM_COMMON_STATS_HH
