#include "common/log.hh"

namespace tsm {
namespace detail {

LogLevel &
logThreshold()
{
    static LogLevel threshold = LogLevel::Info;
    return threshold;
}

void
logEmit(LogLevel level, std::string_view msg, const std::source_location &loc)
{
    const char *prefix = "info";
    switch (level) {
      case LogLevel::Debug: prefix = "debug"; break;
      case LogLevel::Info:  prefix = "info";  break;
      case LogLevel::Warn:  prefix = "warn";  break;
      case LogLevel::Fatal: prefix = "fatal"; break;
      case LogLevel::Panic: prefix = "panic"; break;
    }
    if (level >= LogLevel::Fatal) {
        std::cerr << prefix << ": " << msg << " [" << loc.file_name() << ':'
                  << loc.line() << "]\n";
    } else {
        std::cerr << prefix << ": " << msg << '\n';
    }
}

} // namespace detail

void
setLogLevel(LogLevel level)
{
    detail::logThreshold() = level;
}

LogLevel
logLevel()
{
    return detail::logThreshold();
}

} // namespace tsm
