/**
 * @file
 * Status and error reporting for the simulator, following the gem5
 * convention: inform() and warn() report conditions without stopping the
 * simulation, fatal() aborts because of a user/configuration error, and
 * panic() aborts because of an internal simulator bug (e.g. a violated
 * determinism invariant).
 */

#ifndef TSM_COMMON_LOG_HH
#define TSM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <source_location>
#include <string>
#include <string_view>

#include "common/format.hh"

namespace tsm {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Fatal, Panic };

namespace detail {

/** Global verbosity threshold; messages below it are suppressed. */
LogLevel &logThreshold();

/** Emit one formatted message to stderr with a severity prefix. */
void logEmit(LogLevel level, std::string_view msg,
             const std::source_location &loc);

} // namespace detail

/** Set the global verbosity threshold (messages below are dropped). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * Report an informative message the user should see but not worry about.
 */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    if (detail::logThreshold() <= LogLevel::Info) {
        detail::logEmit(LogLevel::Info,
                        tsm::format(fmt, std::forward<Args>(args)...),
                        std::source_location::current());
    }
}

/**
 * Report a condition that might indicate a problem but lets the
 * simulation continue.
 */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    if (detail::logThreshold() <= LogLevel::Warn) {
        detail::logEmit(LogLevel::Warn,
                        tsm::format(fmt, std::forward<Args>(args)...),
                        std::source_location::current());
    }
}

/**
 * Abort because the simulation cannot continue due to a user error
 * (bad configuration, invalid arguments). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    detail::logEmit(LogLevel::Fatal,
                    tsm::format(fmt, std::forward<Args>(args)...),
                    std::source_location::current());
    std::exit(1);
}

/**
 * Abort because something happened that should never happen regardless
 * of user input — an internal bug, such as a violated scheduling
 * invariant. Calls abort() so a core dump / debugger can inspect state.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    detail::logEmit(LogLevel::Panic,
                    tsm::format(fmt, std::forward<Args>(args)...),
                    std::source_location::current());
    std::abort();
}

/** panic() unless the given invariant condition holds. */
#define TSM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tsm::panic("assertion failed: " #cond " — " __VA_ARGS__);     \
        }                                                                   \
    } while (0)

} // namespace tsm

#endif // TSM_COMMON_LOG_HH
