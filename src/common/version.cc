#include "common/version.hh"

namespace tsm {

std::string
toolVersionLine(const char *tool,
                std::initializer_list<const char *> schemas)
{
    std::string out = tool;
    out += " (tsm";
    if (schemas.size() > 0) {
        out += "; supports ";
        bool first = true;
        for (const char *s : schemas) {
            if (!first)
                out += ", ";
            out += s;
            first = false;
        }
    }
    out += ")\n";
    return out;
}

} // namespace tsm
