#include "common/table.hh"

#include <algorithm>
#include "common/format.hh"

#include "common/log.hh"

namespace tsm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    TSM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    TSM_ASSERT(cells.size() == headers_.size(),
               "row width does not match header count");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    return format("{:.{}f}", v, precision);
}

std::string
Table::num(std::uint64_t v)
{
    return format("{}", v);
}

std::string
Table::num(std::int64_t v)
{
    return format("{}", v);
}

std::string
Table::ascii() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += format("{:>{}}", row[c], widths[c]);
            if (c + 1 < row.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

std::string
Table::csv() const
{
    auto join = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += ',';
        }
        line += '\n';
        return line;
    };
    std::string out = join(headers_);
    for (const auto &row : rows_)
        out += join(row);
    return out;
}

} // namespace tsm
