#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include "common/format.hh"

#include "common/log.hh"

namespace tsm {

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (x - mean_);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const std::uint64_t total = count_ + other.count_;
    m2_ += other.m2_ +
           delta * delta * double(count_) * double(other.count_) /
               double(total);
    mean_ = (mean_ * double(count_) + other.mean_ * double(other.count_)) /
            double(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ = total;
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::min() const
{
    TSM_ASSERT(count_ > 0, "min of empty accumulator");
    return min_;
}

double
Accumulator::max() const
{
    TSM_ASSERT(count_ > 0, "max of empty accumulator");
    return max_;
}

double
Accumulator::mean() const
{
    TSM_ASSERT(count_ > 0, "mean of empty accumulator");
    return mean_;
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / double(count_);
}

double
Accumulator::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / double(count_ - 1));
}

Histogram::Histogram(double lo, double hi, unsigned num_bins)
    : lo_(lo), width_((hi - lo) / double(num_bins)), bins_(num_bins, 0)
{
    TSM_ASSERT(num_bins > 0 && hi > lo, "degenerate histogram range");
}

void
Histogram::add(double x)
{
    ++count_;
    auto idx = std::int64_t(std::floor((x - lo_) / width_));
    if (idx < 0) {
        ++underflow_;
        idx = 0;
    } else if (idx >= std::int64_t(bins_.size())) {
        ++overflow_;
        idx = std::int64_t(bins_.size()) - 1;
    }
    ++bins_[std::size_t(idx)];
}

double
Histogram::binLo(unsigned i) const
{
    return lo_ + double(i) * width_;
}

double
Histogram::cumulativeFraction(unsigned i) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (unsigned b = 0; b <= i && b < bins_.size(); ++b)
        acc += bins_[b];
    return double(acc) / double(count_);
}

double
Histogram::percentile(double fraction) const
{
    TSM_ASSERT(count_ > 0, "percentile of empty histogram");
    std::uint64_t acc = 0;
    for (unsigned b = 0; b < bins_.size(); ++b) {
        acc += bins_[b];
        if (double(acc) / double(count_) >= fraction)
            return binLo(b) + width_;
    }
    return binLo(numBins() - 1) + width_;
}

std::string
Histogram::ascii(unsigned max_width, bool skip_empty) const
{
    std::uint64_t peak = 0;
    for (auto c : bins_)
        peak = std::max(peak, c);
    std::string out;
    for (unsigned b = 0; b < bins_.size(); ++b) {
        if (skip_empty && bins_[b] == 0)
            continue;
        const auto bar_len =
            peak == 0 ? 0u
                      : unsigned(double(bins_[b]) / double(peak) * max_width);
        out += format("{:>12.1f} |{:<{}} {}\n", binLo(b),
                           std::string(bar_len, '#'), max_width, bins_[b]);
    }
    return out;
}

void
Log2Histogram::add(std::uint64_t v)
{
    ++buckets_[bucketOf(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Log2Histogram::reset()
{
    *this = Log2Histogram();
}

double
Log2Histogram::mean() const
{
    return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

unsigned
Log2Histogram::bucketOf(std::uint64_t v)
{
    unsigned width = 0;
    while (v != 0) {
        ++width;
        v >>= 1;
    }
    return width;
}

std::uint64_t
Log2Histogram::bucketLo(unsigned b)
{
    TSM_ASSERT(b < kBuckets, "bucket out of range");
    return b == 0 ? 0 : std::uint64_t(1) << (b - 1);
}

std::uint64_t
Log2Histogram::bucketHi(unsigned b)
{
    TSM_ASSERT(b < kBuckets, "bucket out of range");
    if (b == 0)
        return 0;
    if (b == kBuckets - 1)
        return ~std::uint64_t(0);
    return (std::uint64_t(1) << b) - 1;
}

std::uint64_t
Log2Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t acc = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        acc += buckets_[b];
        if (double(acc) >= q * double(count_))
            return std::min(bucketHi(b), max_);
    }
    return max_;
}

double
SampleSet::percentile(double q) const
{
    TSM_ASSERT(!samples_.empty(), "percentile of empty sample set");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = q * double(samples_.size() - 1);
    const auto lo = std::size_t(std::floor(rank));
    const auto hi = std::size_t(std::ceil(rank));
    const double frac = rank - double(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

} // namespace tsm
