#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tsm {

void
CliParser::addFlag(std::string name, bool *out, std::string help)
{
    Flag f;
    f.name = std::move(name);
    f.boolOut = out;
    f.help = std::move(help);
    flags_.push_back(std::move(f));
}

void
CliParser::addValue(std::string name, std::string *out, std::string help)
{
    Flag f;
    f.name = std::move(name);
    f.strOut = out;
    f.help = std::move(help);
    flags_.push_back(std::move(f));
}

void
CliParser::addValue(std::string name, unsigned *out, std::string help)
{
    Flag f;
    f.name = std::move(name);
    f.uintOut = out;
    f.help = std::move(help);
    flags_.push_back(std::move(f));
}

void
CliParser::addValue(std::string name, std::uint64_t *out, std::string help)
{
    Flag f;
    f.name = std::move(name);
    f.u64Out = out;
    f.help = std::move(help);
    flags_.push_back(std::move(f));
}

void
CliParser::addValue(std::string name, double *out, std::string help)
{
    Flag f;
    f.name = std::move(name);
    f.doubleOut = out;
    f.help = std::move(help);
    flags_.push_back(std::move(f));
}

void
CliParser::addList(std::string name, std::vector<std::string> *out,
                   std::string help)
{
    Flag f;
    f.name = std::move(name);
    f.listOut = out;
    f.help = std::move(help);
    flags_.push_back(std::move(f));
}

void
CliParser::allowPrefix(std::string prefix)
{
    prefixes_.push_back(std::move(prefix));
}

std::string
CliParser::usage() const
{
    std::string out = "usage: " + prog_;
    out += flags_.empty() ? "\n" : " [flags]\n";
    for (const auto &f : flags_) {
        out += "  " + f.name;
        if (f.takesValue())
            out += (f.uintOut || f.u64Out) ? "=N"
                   : f.doubleOut           ? "=X"
                   : f.listOut             ? "=A,B,..."
                                           : "=VALUE";
        if (!f.help.empty())
            out += "   " + f.help;
        out += '\n';
    }
    for (const auto &p : prefixes_)
        out += "  " + p + "*   passed through\n";
    return out;
}

bool
CliParser::parse(int &argc, char **argv)
{
    int out = 1;
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];

        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }

        const Flag *match = nullptr;
        std::string value;
        for (const auto &f : flags_) {
            if (f.takesValue()) {
                if (arg.size() > f.name.size() + 1 &&
                    arg.compare(0, f.name.size(), f.name) == 0 &&
                    arg[f.name.size()] == '=') {
                    match = &f;
                    value = arg.substr(f.name.size() + 1);
                    break;
                }
                if (arg == f.name) {
                    std::fprintf(stderr, "%s: flag %s requires a value "
                                         "(%s=...)\n",
                                 prog_.c_str(), f.name.c_str(),
                                 f.name.c_str());
                    ok = false;
                    match = &f;
                    value.clear();
                    break;
                }
            } else if (arg == f.name) {
                match = &f;
                break;
            }
        }

        if (match) {
            if (!ok)
                continue;
            if (match->boolOut) {
                *match->boolOut = true;
            } else if (match->strOut) {
                *match->strOut = value;
            } else if (match->uintOut) {
                char *end = nullptr;
                const unsigned long v = std::strtoul(value.c_str(), &end, 10);
                if (end == value.c_str() || *end != '\0') {
                    std::fprintf(stderr,
                                 "%s: flag %s expects an unsigned integer, "
                                 "got \"%s\"\n",
                                 prog_.c_str(), match->name.c_str(),
                                 value.c_str());
                    ok = false;
                } else {
                    *match->uintOut = unsigned(v);
                }
            } else if (match->u64Out) {
                char *end = nullptr;
                const unsigned long long v =
                    std::strtoull(value.c_str(), &end, 10);
                if (end == value.c_str() || *end != '\0') {
                    std::fprintf(stderr,
                                 "%s: flag %s expects an unsigned integer, "
                                 "got \"%s\"\n",
                                 prog_.c_str(), match->name.c_str(),
                                 value.c_str());
                    ok = false;
                } else {
                    *match->u64Out = std::uint64_t(v);
                }
            } else if (match->doubleOut) {
                char *end = nullptr;
                const double v = std::strtod(value.c_str(), &end);
                if (end == value.c_str() || *end != '\0') {
                    std::fprintf(stderr,
                                 "%s: flag %s expects a number, got \"%s\"\n",
                                 prog_.c_str(), match->name.c_str(),
                                 value.c_str());
                    ok = false;
                } else {
                    *match->doubleOut = v;
                }
            } else if (match->listOut) {
                std::size_t start = 0;
                bool bad = false;
                std::vector<std::string> items;
                while (start <= value.size()) {
                    std::size_t comma = value.find(',', start);
                    if (comma == std::string::npos)
                        comma = value.size();
                    if (comma == start) {
                        bad = true;
                        break;
                    }
                    items.push_back(value.substr(start, comma - start));
                    start = comma + 1;
                }
                if (bad) {
                    std::fprintf(stderr,
                                 "%s: flag %s expects a comma-separated "
                                 "list with no empty items, got \"%s\"\n",
                                 prog_.c_str(), match->name.c_str(),
                                 value.c_str());
                    ok = false;
                } else {
                    for (auto &item : items)
                        match->listOut->push_back(std::move(item));
                }
            }
            continue;
        }

        bool passthrough = positionals_ && !arg.empty() && arg[0] != '-';
        for (const auto &p : prefixes_) {
            if (passthrough)
                break;
            if (arg.compare(0, p.size(), p) == 0) {
                passthrough = true;
                break;
            }
        }
        if (passthrough) {
            argv[out++] = argv[i];
            continue;
        }

        std::fprintf(stderr, "%s: unknown argument \"%s\"\n", prog_.c_str(),
                     arg.c_str());
        ok = false;
    }
    argc = out;
    if (!ok)
        std::fputs(usage().c_str(), stderr);
    return ok;
}

} // namespace tsm
