#include "net/network.hh"

#include <algorithm>

#include "common/log.hh"

namespace tsm {

Network::Network(const Topology &topo, EventQueue &eq, const Rng &rng,
                 bool jitter_enabled)
    : topo_(&topo), eventq_(&eq), rng_(rng.fork(0x6e657477)),
      jitterEnabled_(jitter_enabled)
{
    directions_.assign(topo.links().size() * 2, Direction{});
    stats_.assign(topo.links().size(), LinkStats{});
    rx_.assign(topo.numTsps(), std::vector<PortRx>(kPortsPerTsp));
    sinks_.assign(topo.numTsps(), nullptr);
}

void
Network::attachSink(TspId tsp, FlitSink *sink)
{
    TSM_ASSERT(tsp < sinks_.size(), "sink tsp out of range");
    sinks_[tsp] = sink;
}

std::size_t
Network::dirIndex(LinkId l, TspId src) const
{
    const Link &link = topo_->links()[l];
    TSM_ASSERT(src == link.a || src == link.b,
               "transmit from a TSP not on this link");
    return std::size_t(l) * 2 + (src == link.a ? 0 : 1);
}

Tick
Network::earliestDeparture(TspId src, LinkId l, Tick earliest) const
{
    return std::max(earliest, directions_[dirIndex(l, src)].txFreeAt);
}

Tick
Network::transmit(TspId src, LinkId l, Flit flit, Tick depart)
{
    TSM_ASSERT(l < topo_->links().size(), "bad link id");
    TSM_ASSERT(topo_->linkEnabled(l), "transmit on an out-of-service link");
    TSM_ASSERT(depart >= eventq_->now(), "transmit scheduled in the past");

    const Link &link = topo_->links()[l];
    Direction &dir = directions_[dirIndex(l, src)];
    TSM_ASSERT(depart >= dir.txFreeAt,
               "SSN invariant violated: link-cycle conflict on link {} — "
               "flow {} seq {} departs at {} while flow {} seq {} holds "
               "the transmitter until {}",
               l, flit.flow, flit.seq, depart, dir.occupant.flow,
               dir.occupant.seq, dir.txFreeAt);

    Tick ser = Tick(kVectorSerializationPs);
    Tick nominal_prop = linkPropagationPs(link.cls);
    if (auto it = linkTimings_.find(l); it != linkTimings_.end()) {
        ser = it->second.serializationPs;
        nominal_prop = it->second.propagationPs;
    }
    dir.txFreeAt = depart + ser;
    dir.occupant = {flit.flow, flit.seq, flit.span, depart};

    LinkStats &st = stats_[l];
    ++st.flits;
    st.busyPs += ser;

    // FEC (paper §4.5): single-bit errors are corrected in situ with no
    // timing impact; multi-bit errors are detected and flagged.
    const ErrorModel *em = &errorModel_;
    if (auto it = linkErrorModels_.find(l); it != linkErrorModels_.end())
        em = &it->second;
    if (em->sbePerVector > 0.0 && rng_.chance(em->sbePerVector))
        ++st.sbeCorrected;
    if (em->mbePerVector > 0.0 && rng_.chance(em->mbePerVector)) {
        ++st.mbeDetected;
        flit.corrupt = true;
        if (eventq_->tracer().wants(TraceCat::Net))
            eventq_->tracer().emit({depart, 0, TraceCat::Net, l, "mbe",
                                    std::int64_t(flit.flow),
                                    std::int64_t(flit.seq), flit.span});
    }

    Tick prop = nominal_prop;
    if (jitterEnabled_) {
        const double sigma = double(linkJitterPs(link.cls));
        // Truncate at +-4 sigma; latency can never go below a physical
        // floor of ~90% of nominal.
        double noise = rng_.gaussian(0.0, sigma);
        noise = std::clamp(noise, -4.0 * sigma, 4.0 * sigma);
        const double floor_ps = 0.9 * double(prop);
        prop = Tick(std::max(floor_ps, double(prop) + noise));
    }

    const Tick arrival = depart + ser + prop;
    if (eventq_->tracer().wants(TraceCat::Net))
        eventq_->tracer().emit({depart, arrival - depart, TraceCat::Net, l,
                                "tx", std::int64_t(flit.flow),
                                std::int64_t(flit.seq), flit.span});
    deliver(link, src, l, std::move(flit), arrival);
    return arrival;
}

Tick
Network::controlTransmit(TspId src, LinkId l, Flit flit)
{
    TSM_ASSERT(l < topo_->links().size(), "bad link id");
    TSM_ASSERT(topo_->linkEnabled(l), "transmit on an out-of-service link");
    const Link &link = topo_->links()[l];

    Tick prop = linkPropagationPs(link.cls);
    if (auto it = linkTimings_.find(l); it != linkTimings_.end())
        prop = it->second.propagationPs;
    if (jitterEnabled_) {
        const double sigma = double(linkJitterPs(link.cls));
        double noise = rng_.gaussian(0.0, sigma);
        noise = std::clamp(noise, -4.0 * sigma, 4.0 * sigma);
        const double floor_ps = 0.9 * double(prop);
        prop = Tick(std::max(floor_ps, double(prop) + noise));
    }
    const Tick arrival = eventq_->now() + prop;
    if (eventq_->tracer().wants(TraceCat::Net))
        eventq_->tracer().emit({eventq_->now(), arrival - eventq_->now(),
                                TraceCat::Net, l, "ctl",
                                std::int64_t(flit.flow),
                                std::int64_t(flit.meta), flit.span});
    deliver(link, src, l, std::move(flit), arrival);
    return arrival;
}

void
Network::deliver(const Link &link, TspId src, LinkId l, Flit flit,
                 Tick arrival)
{
    const TspId dst = link.peer(src);
    const unsigned dst_port = link.portAt(dst);
    const SpanId span = flit.span;
    eventq_->schedule(
        arrival,
        [this, dst, dst_port, l, flit = std::move(flit), arrival] {
            ArrivedFlit af{flit, arrival, l};
            if (eventq_->tracer().wants(TraceCat::Net))
                eventq_->tracer().emit({arrival, 0, TraceCat::Net, l, "rx",
                                        std::int64_t(af.flit.flow),
                                        std::int64_t(af.flit.seq),
                                        af.flit.span});
            if (sinks_[dst])
                sinks_[dst]->flitArrived(dst_port, af);
            else
                rx_[dst][dst_port].fifo.push_back(af);
        },
        span, EventKind::NetDeliver);
}

Tick
Network::transmitNow(TspId src, LinkId l, Flit flit)
{
    return transmit(src, l, std::move(flit),
                    earliestDeparture(src, l, eventq_->now()));
}

std::optional<ArrivedFlit>
Network::pollRx(TspId tsp, unsigned port)
{
    auto &fifo = rx_[tsp][port].fifo;
    if (fifo.empty())
        return std::nullopt;
    ArrivedFlit af = fifo.front();
    fifo.pop_front();
    return af;
}

std::size_t
Network::rxDepth(TspId tsp, unsigned port) const
{
    return rx_[tsp][port].fifo.size();
}

const Network::Occupant &
Network::lastOccupant(TspId src, LinkId l) const
{
    return directions_[dirIndex(l, src)].occupant;
}

std::uint64_t
Network::totalFlits() const
{
    std::uint64_t total = 0;
    for (const auto &st : stats_)
        total += st.flits;
    return total;
}

std::uint64_t
Network::totalMbes() const
{
    std::uint64_t total = 0;
    for (const auto &st : stats_)
        total += st.mbeDetected;
    return total;
}

} // namespace tsm
