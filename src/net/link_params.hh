/**
 * @file
 * Per-class C2C link timing parameters.
 *
 * The packaging hierarchy (paper Fig 5) yields three cable classes with
 * different lengths and hence latencies. Calibration anchors:
 *
 *  - Table 2: intra-node HAC-measured one-way latency mean 216.87 core
 *    cycles (240,970 ps) with sample std ~2.8 cycles;
 *  - §5.6: per-hop pipelined all-reduce latency 722 ns and a 3-hop
 *    (local, global, local) latency of 2,166 ns in a 256-TSP system;
 *  - abstract: < 3 us end-to-end across the 5-hop-diameter 10,440-TSP
 *    system.
 *
 * A hop = serialization (26.24 ns) + wire/SerDes propagation + the
 * receiving TSP's fixed forwarding overhead (clock-domain crossing, FEC
 * pipeline, SRAM cut-through buffer).
 */

#ifndef TSM_NET_LINK_PARAMS_HH
#define TSM_NET_LINK_PARAMS_HH

#include <cstdint>

#include "common/units.hh"

namespace tsm {

/** Cable class, determined by the packaging hierarchy. */
enum class LinkClass : std::uint8_t
{
    IntraNode, ///< 34 AWG electrical, <= 0.75 m, inside the 4U chassis
    IntraRack, ///< QSFP electrical, < 2 m, node-to-node within a rack
    InterRack, ///< active optical, rack-to-rack
};

/** Printable name of a link class. */
const char *linkClassName(LinkClass cls);

/** Fixed per-hop receive/forward pipeline overhead (all classes). */
inline constexpr Tick kForwardOverheadPs = 252'790;

/** One-way propagation + SerDes latency per link class. */
constexpr Tick
linkPropagationPs(LinkClass cls)
{
    switch (cls) {
      case LinkClass::IntraNode: return 240'970; // 216.87 core cycles
      case LinkClass::IntraRack: return 280'970;
      case LinkClass::InterRack: return 543'970;
    }
    return 0;
}

/**
 * Gaussian 1-sigma jitter of the propagation latency per class. The
 * HAC echo procedure estimates one-way latency as round-trip/2, so the
 * estimate's std is sigma/sqrt(2); 4,400 ps per direction yields the
 * ~2.8-core-cycle sample std the paper reports in Table 2.
 */
constexpr Tick
linkJitterPs(LinkClass cls)
{
    switch (cls) {
      case LinkClass::IntraNode: return 4'400;
      case LinkClass::IntraRack: return 5'100;
      case LinkClass::InterRack: return 7'400;
    }
    return 0;
}

/**
 * Total nominal per-hop latency (serialization + propagation +
 * forwarding overhead): 520 ns intra-node, 560 ns intra-rack, 823 ns
 * inter-rack.
 */
constexpr Tick
hopLatencyPs(LinkClass cls)
{
    return Tick(kVectorSerializationPs) + linkPropagationPs(cls) +
           kForwardOverheadPs;
}

static_assert(hopLatencyPs(LinkClass::IntraNode) == 520'000);
static_assert(hopLatencyPs(LinkClass::IntraRack) == 560'000);
static_assert(hopLatencyPs(LinkClass::InterRack) == 823'000);

/** Bit error rates used by the FEC model (per traversed vector). */
struct ErrorModel
{
    /** Probability a vector suffers a correctable single-bit error. */
    double sbePerVector = 0.0;

    /** Probability a vector suffers an uncorrectable burst error. */
    double mbePerVector = 0.0;
};

} // namespace tsm

#endif // TSM_NET_LINK_PARAMS_HH
