/**
 * @file
 * The network flow-control unit.
 *
 * Paper §2.3: "a *vector* is the flow control unit (flit)". A tensor is
 * a sequence of such vector flits. There are no packet headers or
 * routing fields on the wire (Fig 11 allows only 8 framing bytes);
 * identity below (flow id, sequence number) is simulator metadata that
 * mirrors what the compiler knows statically, not transmitted state.
 */

#ifndef TSM_NET_FLIT_HH
#define TSM_NET_FLIT_HH

#include <cstdint>

#include "arch/vec.hh"
#include "common/units.hh"
#include "trace/span.hh"

namespace tsm {

/** Identifies one scheduled tensor transfer (compiler-assigned). */
using FlowId = std::uint32_t;

inline constexpr FlowId kFlowInvalid = ~FlowId(0);

/** Reserved flow ids used by the synchronization machinery. */
inline constexpr FlowId kFlowHacExchange = kFlowInvalid - 1;
inline constexpr FlowId kFlowSyncToken = kFlowInvalid - 2;

/** True for compiler-assigned tensor flows (not untagged or reserved). */
constexpr bool
isDataFlow(FlowId f)
{
    return f != 0 && f < kFlowSyncToken;
}

/** One 320-byte vector in flight. */
struct Flit
{
    FlowId flow = kFlowInvalid;

    /** Position of this vector within its tensor. */
    std::uint32_t seq = 0;

    /** Optional payload; null for timing-only transfers. */
    VecPtr payload;

    /**
     * Set when FEC detected an uncorrectable (multi-bit) burst error on
     * some traversed link; the data is unusable and the runtime must
     * replay (paper §4.5). Delivery timing is unaffected — that is the
     * point of FEC over link-level retry.
     */
    bool corrupt = false;

    /**
     * Scratch field carrying a raw value for sync traffic (e.g. the HAC
     * value being exchanged) without materializing a payload vector.
     */
    std::int64_t meta = 0;

    /**
     * Causal span of the transfer leg this flit is a hop of
     * (trace/span.hh). Like flow/seq this is simulator metadata
     * mirroring compile-time knowledge, not wire state; it rides the
     * flit so every network-layer trace event along the path can name
     * the transfer it serves.
     */
    SpanId span = kSpanNone;
};

} // namespace tsm

#endif // TSM_NET_FLIT_HH
