/**
 * @file
 * The live interconnect: binds a Topology to the event queue and moves
 * vector flits between TSPs.
 *
 * Determinism contract (paper §4.4): in SSN operation the network never
 * arbitrates and never back-pressures. A transmit that would overlap a
 * port's previous serialization window is a *compiler* bug and panics;
 * it is not queued. FEC (paper §4.5) corrects single-bit errors in situ
 * with no timing change and flags uncorrectable errors on the flit for
 * the runtime to handle by replay.
 */

#ifndef TSM_NET_NETWORK_HH
#define TSM_NET_NETWORK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"

namespace tsm {

/** A flit that has landed in a receive buffer. */
struct ArrivedFlit
{
    Flit flit;
    Tick arrival = 0;
    LinkId via = kLinkInvalid;
};

/**
 * Receiver interface: the network calls this when a flit lands at a
 * TSP's port. TspChip implements it; tests may implement it directly.
 */
class FlitSink
{
  public:
    virtual ~FlitSink() = default;

    /** Called at the flit's arrival tick. */
    virtual void flitArrived(unsigned port, const ArrivedFlit &af) = 0;
};

/** Aggregate per-link counters. */
struct LinkStats
{
    std::uint64_t flits = 0;
    std::uint64_t sbeCorrected = 0;
    std::uint64_t mbeDetected = 0;

    /** Last tick at which the transmitter was busy (for utilization). */
    Tick busyPs = 0;
};

/**
 * The interconnection network. Owns per-link transmit state and
 * per-port receive FIFOs; delivery timing is
 * serialization + propagation(+jitter).
 */
class Network
{
  public:
    /**
     * @param topo The (externally owned) topology; must outlive this.
     * @param eq Event queue driving delivery.
     * @param rng Seed generator for jitter and FEC error draws.
     * @param jitter_enabled When false, links are perfectly
     *        deterministic (jitter = 0) — the operating regime SSN
     *        schedules for after characterization has bounded margins.
     */
    Network(const Topology &topo, EventQueue &eq, const Rng &rng,
            bool jitter_enabled = false);

    const Topology &topo() const { return *topo_; }
    EventQueue &eventq() const { return *eventq_; }

    /** Register the receiver for a TSP's ports (one sink per TSP). */
    void attachSink(TspId tsp, FlitSink *sink);

    /** Set the FEC error model applied to every link. */
    void setErrorModel(const ErrorModel &em) { errorModel_ = em; }

    /** Override the error model of one link (marginal cable, etc.). */
    void
    setLinkErrorModel(LinkId l, const ErrorModel &em)
    {
        linkErrorModels_[l] = em;
    }

    /**
     * Override one link's physical timing: serialization time per
     * vector and propagation delay, both in picoseconds. This is how
     * the what-if checker re-simulates a counterfactual ("link L at
     * 2x bandwidth") with a genuinely faster wire instead of a fudged
     * schedule — the SSN overlap panic still fires if the perturbed
     * schedule and the perturbed physics disagree.
     */
    void
    setLinkTiming(LinkId l, Tick serialization_ps, Tick propagation_ps)
    {
        linkTimings_[l] = {serialization_ps, propagation_ps};
    }

    /** Enable/disable latency jitter (applies to future transmits). */
    void setJitterEnabled(bool on) { jitterEnabled_ = on; }

    /**
     * Transmit one flit from `src` over link `l` starting at tick
     * `depart` (>= now). Panics if the transmitter is still busy — SSN
     * schedules must never overlap serialization windows — or if the
     * link is out of service.
     *
     * @return the tick at which the flit will arrive at the peer.
     */
    Tick transmit(TspId src, LinkId l, Flit flit, Tick depart);

    /** Convenience: transmit at the current tick. */
    Tick transmitNow(TspId src, LinkId l, Flit flit);

    /**
     * Transmit a control flit (HAC exchange, sync tokens). Control
     * traffic rides the line code's reserved symbols (the HAC reserves
     * 4 of its 256 codes for control), so it does not occupy a vector
     * serialization window and may overlap data transmission.
     */
    Tick controlTransmit(TspId src, LinkId l, Flit flit);

    /**
     * Earliest tick >= `earliest` at which `src` may begin a transmit
     * on link `l` (the port's serialization window must be free).
     */
    Tick earliestDeparture(TspId src, LinkId l, Tick earliest) const;

    /**
     * Pop the oldest undelivered flit at (tsp, port), if any. Only
     * flits for TSPs with no attached sink land here; a sink takes
     * delivery directly.
     */
    std::optional<ArrivedFlit> pollRx(TspId tsp, unsigned port);

    /** Number of flits waiting at (tsp, port). */
    std::size_t rxDepth(TspId tsp, unsigned port) const;

    /** The transmit that most recently occupied one link direction. */
    struct Occupant
    {
        FlowId flow = kFlowInvalid;
        std::uint32_t seq = 0;
        SpanId span = kSpanNone;

        /** Serialization window [depart, depart + serialization). */
        Tick depart = 0;
    };

    /**
     * Who last held the transmitter of (l, from `src`), and when.
     * The enqueue-time half of contention attribution: any transmit
     * pushed past `earliest` by earliestDeparture() was pushed by
     * exactly this occupant's serialization window.
     */
    const Occupant &lastOccupant(TspId src, LinkId l) const;

    const LinkStats &linkStats(LinkId l) const { return stats_[l]; }

    /** Sum of flits carried over all links. */
    std::uint64_t totalFlits() const;

    /** Total uncorrectable errors detected across all links. */
    std::uint64_t totalMbes() const;

  private:
    /** Overridden physical timing of one link (setLinkTiming). */
    struct LinkTiming
    {
        Tick serializationPs = 0;
        Tick propagationPs = 0;
    };

    struct Direction
    {
        /** Transmitter end is free again at this tick. */
        Tick txFreeAt = 0;

        /** The flit whose serialization window set txFreeAt. */
        Occupant occupant;
    };

    struct PortRx
    {
        std::deque<ArrivedFlit> fifo;
    };

    /** Index of the direction record for transmits from `src` on `l`. */
    std::size_t dirIndex(LinkId l, TspId src) const;

    /** Schedule delivery of a flit into the peer's sink or rx FIFO. */
    void deliver(const Link &link, TspId src, LinkId l, Flit flit,
                 Tick arrival);

    const Topology *topo_;
    EventQueue *eventq_;
    Rng rng_;
    bool jitterEnabled_;
    ErrorModel errorModel_;
    std::unordered_map<LinkId, ErrorModel> linkErrorModels_;
    std::unordered_map<LinkId, LinkTiming> linkTimings_;

    std::vector<Direction> directions_; // 2 per link
    std::vector<LinkStats> stats_;      // 1 per link
    std::vector<std::vector<PortRx>> rx_; // [tsp][port]
    std::vector<FlitSink *> sinks_;       // [tsp]
};

} // namespace tsm

#endif // TSM_NET_NETWORK_HH
