tsm_module(net
    topology.cc
    network.cc
)
