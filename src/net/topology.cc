#include "net/topology.hh"

#include <algorithm>
#include <deque>
#include "common/format.hh"
#include <functional>
#include <queue>

#include "common/log.hh"

namespace tsm {

const char *
linkClassName(LinkClass cls)
{
    switch (cls) {
      case LinkClass::IntraNode: return "intra-node";
      case LinkClass::IntraRack: return "intra-rack";
      case LinkClass::InterRack: return "inter-rack";
    }
    return "?";
}

void
Topology::addLink(TspId a, TspId b, LinkClass cls)
{
    TSM_ASSERT(a < numTsps_ && b < numTsps_ && a != b,
               "link endpoints out of range");
    Link link;
    link.a = a;
    link.b = b;
    link.cls = cls;
    if (cls == LinkClass::IntraNode) {
        TSM_ASSERT(nextLocalPort_[a] < kLocalPortsPerTsp &&
                       nextLocalPort_[b] < kLocalPortsPerTsp,
                   "local port budget (7) exhausted");
        link.portA = nextLocalPort_[a]++;
        link.portB = nextLocalPort_[b]++;
    } else {
        TSM_ASSERT(nextGlobalPort_[a] < kGlobalPortsPerTsp &&
                       nextGlobalPort_[b] < kGlobalPortsPerTsp,
                   "global port budget (4) exhausted");
        link.portA = std::uint8_t(kLocalPortsPerTsp + nextGlobalPort_[a]++);
        link.portB = std::uint8_t(kLocalPortsPerTsp + nextGlobalPort_[b]++);
    }
    links_.push_back(link);
}

void
Topology::wireNode(unsigned n, NodeWiring wiring)
{
    const TspId base = n * kTspsPerNode;
    if (wiring == NodeWiring::FullMesh) {
        // 28 internal cables: all-to-all over the 7 local ports.
        for (unsigned i = 0; i < kTspsPerNode; ++i)
            for (unsigned j = i + 1; j < kTspsPerNode; ++j)
                addLink(base + i, base + j, LinkClass::IntraNode);
    } else {
        // Radix-8 ring, triple-connected: 3 parallel links to each of
        // the two ring neighbours uses 6 of the 7 local ports; the
        // seventh connects to the diametrically opposite TSP, closing
        // the "torus" with a long diagonal.
        for (unsigned i = 0; i < kTspsPerNode; ++i) {
            const unsigned j = (i + 1) % kTspsPerNode;
            for (unsigned k = 0; k < 3; ++k)
                addLink(base + i, base + j, LinkClass::IntraNode);
        }
        for (unsigned i = 0; i < kTspsPerNode / 2; ++i)
            addLink(base + i, base + i + kTspsPerNode / 2,
                    LinkClass::IntraNode);
    }
}

Topology
Topology::makeNode(NodeWiring wiring)
{
    Topology t;
    t.numTsps_ = kTspsPerNode;
    t.numNodes_ = 1;
    t.nextLocalPort_.assign(t.numTsps_, 0);
    t.nextGlobalPort_.assign(t.numTsps_, 0);
    t.wireNode(0, wiring);
    t.finalize();
    return t;
}

Topology
Topology::makeRing(unsigned n)
{
    TSM_ASSERT(n >= 3 && n <= 64, "ring supports 3..64 TSPs");
    Topology t;
    t.numTsps_ = n;
    t.numNodes_ = (n + kTspsPerNode - 1) / kTspsPerNode;
    t.nextLocalPort_.assign(n, 0);
    t.nextGlobalPort_.assign(n, 0);
    for (unsigned i = 0; i < n; ++i)
        t.addLink(i, (i + 1) % n, LinkClass::IntraNode);
    t.finalize();
    return t;
}

Topology
Topology::makeSingleLevel(unsigned num_nodes, NodeWiring wiring)
{
    TSM_ASSERT(num_nodes >= 1 && num_nodes <= kMaxNodesSingleLevel,
               "single-level dragonfly supports 1..33 nodes");
    if (num_nodes == 1)
        return makeNode(wiring);

    Topology t;
    t.numTsps_ = num_nodes * kTspsPerNode;
    t.numNodes_ = num_nodes;
    t.nextLocalPort_.assign(t.numTsps_, 0);
    t.nextGlobalPort_.assign(t.numTsps_, 0);
    for (unsigned n = 0; n < num_nodes; ++n)
        t.wireNode(n, wiring);

    // The node is a 32-port virtual router; spare ports become
    // parallel links between node pairs.
    const unsigned ports_per_node = kTspsPerNode * kGlobalPortsPerTsp;
    const unsigned links_per_pair =
        std::max(1u, ports_per_node / (num_nodes - 1));
    // Global links within one system fit in a rack (or a few racks);
    // treat them as intra-rack electrical cables.
    for (unsigned i = 0; i < num_nodes; ++i) {
        for (unsigned j = i + 1; j < num_nodes; ++j) {
            for (unsigned l = 0; l < links_per_pair; ++l) {
                // Attach parallel links at rotating TSP offsets so the
                // load spreads over all 8 TSPs of both nodes.
                const TspId a =
                    i * kTspsPerNode + TspId((j + l) % kTspsPerNode);
                const TspId b =
                    j * kTspsPerNode + TspId((i + l) % kTspsPerNode);
                if (t.nextGlobalPort_[a] < kGlobalPortsPerTsp &&
                    t.nextGlobalPort_[b] < kGlobalPortsPerTsp) {
                    t.addLink(a, b, LinkClass::IntraRack);
                } else {
                    // Fall back to any node-local TSP with a free port.
                    TspId fa = kTspInvalid, fb = kTspInvalid;
                    for (unsigned k = 0; k < kTspsPerNode; ++k) {
                        const TspId cand = i * kTspsPerNode + k;
                        if (t.nextGlobalPort_[cand] < kGlobalPortsPerTsp) {
                            fa = cand;
                            break;
                        }
                    }
                    for (unsigned k = 0; k < kTspsPerNode; ++k) {
                        const TspId cand = j * kTspsPerNode + k;
                        if (t.nextGlobalPort_[cand] < kGlobalPortsPerTsp) {
                            fb = cand;
                            break;
                        }
                    }
                    if (fa != kTspInvalid && fb != kTspInvalid)
                        t.addLink(fa, fb, LinkClass::IntraRack);
                }
            }
        }
    }

    // Second pass: the floor division above can strand ports (e.g. 24
    // nodes leave 32 - 23 = 9 ports unused per node). Spend them on
    // extra parallel links, always topping up the least-connected
    // feasible pair first, so the global bandwidth profile stays flat
    // (paper Fig 2) and no pair is starved.
    auto free_port_tsp = [&](unsigned node) -> TspId {
        for (unsigned k = 0; k < kTspsPerNode; ++k) {
            const TspId cand = node * kTspsPerNode + k;
            if (t.nextGlobalPort_[cand] < kGlobalPortsPerTsp)
                return cand;
        }
        return kTspInvalid;
    };
    std::vector<std::vector<unsigned>> pair_count(
        num_nodes, std::vector<unsigned>(num_nodes, 0));
    for (const auto &l : t.links_) {
        if (l.cls == LinkClass::IntraNode)
            continue;
        ++pair_count[l.a / kTspsPerNode][l.b / kTspsPerNode];
        ++pair_count[l.b / kTspsPerNode][l.a / kTspsPerNode];
    }
    for (;;) {
        unsigned best_i = 0, best_j = 0, best = ~0u;
        for (unsigned i = 0; i < num_nodes; ++i) {
            if (free_port_tsp(i) == kTspInvalid)
                continue;
            for (unsigned j = i + 1; j < num_nodes; ++j) {
                if (free_port_tsp(j) == kTspInvalid)
                    continue;
                if (pair_count[i][j] < best) {
                    best = pair_count[i][j];
                    best_i = i;
                    best_j = j;
                }
            }
        }
        // Stop once only over-connected pairs remain feasible (the
        // endgame would otherwise dump every leftover port between
        // the last two port-rich nodes); stranded ports stay unused,
        // as on real deployments.
        if (best == ~0u || best >= links_per_pair + 2)
            break;
        t.addLink(free_port_tsp(best_i), free_port_tsp(best_j),
                  LinkClass::IntraRack);
        ++pair_count[best_i][best_j];
        ++pair_count[best_j][best_i];
    }
    t.finalize();
    return t;
}

Topology
Topology::makeTwoLevel(unsigned num_racks, NodeWiring wiring)
{
    TSM_ASSERT(num_racks >= 2 && num_racks <= kMaxRacks,
               "two-level dragonfly supports 2..145 racks");
    Topology t;
    const unsigned tsps_per_rack = kNodesPerRack * kTspsPerNode; // 72
    t.numTsps_ = num_racks * tsps_per_rack;
    t.numNodes_ = num_racks * kNodesPerRack;
    t.numRacks_ = num_racks;
    t.nextLocalPort_.assign(t.numTsps_, 0);
    t.nextGlobalPort_.assign(t.numTsps_, 0);
    for (unsigned n = 0; n < t.numNodes_; ++n)
        t.wireNode(n, wiring);

    // Stage 1: doubly-connect the 9 nodes within each rack (2x internal
    // speedup): 36 node pairs x 2 links = 144 ports per rack, i.e. 2 of
    // the 4 global ports of every TSP.
    for (unsigned r = 0; r < num_racks; ++r) {
        const unsigned node_base = r * kNodesPerRack;
        for (unsigned i = 0; i < kNodesPerRack; ++i) {
            for (unsigned j = i + 1; j < kNodesPerRack; ++j) {
                for (unsigned l = 0; l < 2; ++l) {
                    const TspId a = (node_base + i) * kTspsPerNode +
                                    TspId((j + l * 4) % kTspsPerNode);
                    const TspId b = (node_base + j) * kTspsPerNode +
                                    TspId((i + l * 4) % kTspsPerNode);
                    t.addLink(a, b, LinkClass::IntraRack);
                }
            }
        }
    }

    // Stage 2: the remaining 144 ports per rack connect the racks
    // all-to-all.
    const unsigned inter_ports_per_rack = 144;
    const unsigned links_per_rack_pair =
        std::max(1u, inter_ports_per_rack / (num_racks - 1));
    // Round-robin cursor over the rack's TSPs with free global ports.
    std::vector<unsigned> cursor(num_racks, 0);
    auto next_free = [&](unsigned rack) -> TspId {
        const TspId base = rack * tsps_per_rack;
        for (unsigned probe = 0; probe < tsps_per_rack; ++probe) {
            const TspId cand = base + TspId((cursor[rack] + probe) %
                                            tsps_per_rack);
            if (t.nextGlobalPort_[cand] < kGlobalPortsPerTsp) {
                cursor[rack] = (cursor[rack] + probe + 1) % tsps_per_rack;
                return cand;
            }
        }
        return kTspInvalid;
    };
    for (unsigned i = 0; i < num_racks; ++i) {
        for (unsigned j = i + 1; j < num_racks; ++j) {
            for (unsigned l = 0; l < links_per_rack_pair; ++l) {
                const TspId a = next_free(i);
                const TspId b = next_free(j);
                if (a == kTspInvalid || b == kTspInvalid)
                    break;
                t.addLink(a, b, LinkClass::InterRack);
            }
        }
    }

    // Spend stranded inter-rack ports on extra links, least-connected
    // rack pair first (same policy as the single-level builder), so
    // the Fig 2 global bandwidth profile stays flat mid-scale.
    std::vector<std::vector<unsigned>> rack_pairs(
        num_racks, std::vector<unsigned>(num_racks, 0));
    for (const auto &l : t.links_) {
        if (l.cls != LinkClass::InterRack)
            continue;
        const unsigned ra = l.a / tsps_per_rack;
        const unsigned rb = l.b / tsps_per_rack;
        ++rack_pairs[ra][rb];
        ++rack_pairs[rb][ra];
    }
    for (;;) {
        unsigned best_i = 0, best_j = 0, best = ~0u;
        for (unsigned i = 0; i < num_racks; ++i) {
            if (next_free(i) == kTspInvalid)
                continue;
            for (unsigned j = i + 1; j < num_racks; ++j) {
                if (next_free(j) == kTspInvalid)
                    continue;
                if (rack_pairs[i][j] < best) {
                    best = rack_pairs[i][j];
                    best_i = i;
                    best_j = j;
                }
            }
        }
        if (best == ~0u || best >= links_per_rack_pair + 2)
            break;
        t.addLink(next_free(best_i), next_free(best_j),
                  LinkClass::InterRack);
        ++rack_pairs[best_i][best_j];
        ++rack_pairs[best_j][best_i];
    }
    t.finalize();
    return t;
}

Topology
Topology::forSystemSize(unsigned num_tsps)
{
    TSM_ASSERT(num_tsps >= 1, "need at least one TSP");
    if (num_tsps <= kTspsPerNode)
        return makeNode();
    const unsigned nodes =
        (num_tsps + kTspsPerNode - 1) / kTspsPerNode;
    if (nodes <= kMaxNodesSingleLevel)
        return makeSingleLevel(nodes);
    const unsigned racks = (nodes + kNodesPerRack - 1) / kNodesPerRack;
    TSM_ASSERT(racks <= kMaxRacks,
               "system exceeds the 10,440-TSP maximum configuration");
    return makeTwoLevel(racks);
}

void
Topology::finalize()
{
    adj_.assign(numTsps_, {});
    for (LinkId l = 0; l < links_.size(); ++l) {
        adj_[links_[l].a].push_back(l);
        adj_[links_[l].b].push_back(l);
    }
    enabled_.assign(links_.size(), true);
    nextLocalPort_.clear();
    nextGlobalPort_.clear();
}

std::optional<LinkId>
Topology::linkAtPort(TspId t, unsigned port) const
{
    for (LinkId l : adj_[t])
        if (links_[l].portAt(t) == port)
            return l;
    return std::nullopt;
}

std::vector<LinkId>
Topology::linksBetween(TspId a, TspId b) const
{
    std::vector<LinkId> out;
    for (LinkId l : adj_[a])
        if (enabled_[l] && links_[l].peer(a) == b)
            out.push_back(l);
    return out;
}

unsigned
Topology::distance(TspId src, TspId dst) const
{
    if (src == dst)
        return 0;
    std::vector<unsigned> dist(numTsps_, ~0u);
    std::deque<TspId> queue{src};
    dist[src] = 0;
    while (!queue.empty()) {
        const TspId cur = queue.front();
        queue.pop_front();
        for (LinkId l : adj_[cur]) {
            if (!enabled_[l])
                continue;
            const TspId next = links_[l].peer(cur);
            if (dist[next] == ~0u) {
                dist[next] = dist[cur] + 1;
                if (next == dst)
                    return dist[next];
                queue.push_back(next);
            }
        }
    }
    return ~0u;
}

unsigned
Topology::diameter() const
{
    unsigned worst = 0;
    for (TspId src = 0; src < numTsps_; ++src) {
        // One BFS per source.
        std::vector<unsigned> dist(numTsps_, ~0u);
        std::deque<TspId> queue{src};
        dist[src] = 0;
        while (!queue.empty()) {
            const TspId cur = queue.front();
            queue.pop_front();
            for (LinkId l : adj_[cur]) {
                if (!enabled_[l])
                    continue;
                const TspId next = links_[l].peer(cur);
                if (dist[next] == ~0u) {
                    dist[next] = dist[cur] + 1;
                    queue.push_back(next);
                }
            }
        }
        for (unsigned d : dist)
            if (d != ~0u)
                worst = std::max(worst, d);
    }
    return worst;
}

Tick
Topology::latencyDiameterPs(unsigned sample_sources) const
{
    TSM_ASSERT(sample_sources >= 1, "need at least one source");
    Tick worst = 0;
    const unsigned stride =
        std::max(1u, numTsps() / std::min(sample_sources, numTsps()));
    for (TspId src = 0; src < numTsps(); src += stride) {
        // Dijkstra with per-hop latencies.
        std::vector<Tick> dist(numTsps(), kTickInvalid);
        using Entry = std::pair<Tick, TspId>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
            heap;
        dist[src] = 0;
        heap.emplace(0, src);
        while (!heap.empty()) {
            const auto [d, at] = heap.top();
            heap.pop();
            if (d != dist[at])
                continue;
            for (LinkId l : adj_[at]) {
                if (!enabled_[l])
                    continue;
                const TspId next = links_[l].peer(at);
                const Tick nd = d + hopLatencyPs(links_[l].cls);
                if (nd < dist[next]) {
                    dist[next] = nd;
                    heap.emplace(nd, next);
                }
            }
        }
        for (Tick d : dist)
            if (d != kTickInvalid)
                worst = std::max(worst, d);
    }
    return worst;
}

bool
Topology::connected() const
{
    std::vector<bool> seen(numTsps_, false);
    std::deque<TspId> queue{0};
    seen[0] = true;
    unsigned count = 1;
    while (!queue.empty()) {
        const TspId cur = queue.front();
        queue.pop_front();
        for (LinkId l : adj_[cur]) {
            if (!enabled_[l])
                continue;
            const TspId next = links_[l].peer(cur);
            if (!seen[next]) {
                seen[next] = true;
                ++count;
                queue.push_back(next);
            }
        }
    }
    return count == numTsps_;
}

std::vector<Topology::Path>
Topology::minimalPaths(TspId src, TspId dst, unsigned limit) const
{
    const unsigned d = distance(src, dst);
    if (d == ~0u)
        return {};
    return paths(src, dst, 0, limit);
}

std::vector<Topology::Path>
Topology::paths(TspId src, TspId dst, unsigned max_extra_hops,
                unsigned limit) const
{
    std::vector<Path> result;
    const unsigned d = distance(src, dst);
    if (d == ~0u || src == dst)
        return result;
    const unsigned max_len = d + max_extra_hops;

    // Distance-to-destination pruning table (BFS from dst).
    std::vector<unsigned> to_dst(numTsps_, ~0u);
    {
        std::deque<TspId> queue{dst};
        to_dst[dst] = 0;
        while (!queue.empty()) {
            const TspId cur = queue.front();
            queue.pop_front();
            for (LinkId l : adj_[cur]) {
                if (!enabled_[l])
                    continue;
                const TspId next = links_[l].peer(cur);
                if (to_dst[next] == ~0u) {
                    to_dst[next] = to_dst[cur] + 1;
                    queue.push_back(next);
                }
            }
        }
    }

    Path current;
    std::vector<bool> visited(numTsps_, false);
    visited[src] = true;

    std::function<void(TspId)> dfs = [&](TspId at) {
        if (result.size() >= limit)
            return;
        if (at == dst) {
            result.push_back(current);
            return;
        }
        if (current.size() >= max_len)
            return;
        for (LinkId l : adj_[at]) {
            if (!enabled_[l])
                continue;
            const TspId next = links_[l].peer(at);
            if (visited[next])
                continue;
            // Prune paths that cannot reach dst within budget.
            if (to_dst[next] == ~0u ||
                current.size() + 1 + to_dst[next] > max_len)
                continue;
            visited[next] = true;
            current.push_back(l);
            dfs(next);
            current.pop_back();
            visited[next] = false;
            if (result.size() >= limit)
                return;
        }
    };
    dfs(src);

    // Shortest paths first, then lexicographic by link ids — a stable,
    // deterministic order the scheduler can rely on.
    std::sort(result.begin(), result.end(),
              [](const Path &x, const Path &y) {
                  if (x.size() != y.size())
                      return x.size() < y.size();
                  return x < y;
              });
    return result;
}

Tick
Topology::pathLatencyPs(const Path &path) const
{
    Tick total = 0;
    for (LinkId l : path)
        total += hopLatencyPs(links_[l].cls);
    return total;
}

std::vector<LinkId>
Topology::disableNode(unsigned node)
{
    std::vector<LinkId> disabled;
    const TspId lo = node * kTspsPerNode;
    const TspId hi = lo + kTspsPerNode;
    for (LinkId l = 0; l < links_.size(); ++l) {
        const bool touches = (links_[l].a >= lo && links_[l].a < hi) ||
                             (links_[l].b >= lo && links_[l].b < hi);
        if (touches && enabled_[l]) {
            enabled_[l] = false;
            disabled.push_back(l);
        }
    }
    return disabled;
}

std::string
Topology::describe() const
{
    if (numRacks_ > 1) {
        return format(
            "two-level dragonfly: {} racks x 9 nodes x 8 TSPs = {} TSPs, "
            "{} links",
            numRacks_, numTsps_, links_.size());
    }
    if (numNodes_ > 1) {
        return format(
            "single-level dragonfly: {} nodes x 8 TSPs = {} TSPs, {} links",
            numNodes_, numTsps_, links_.size());
    }
    return format("single node: {} TSPs, {} links", numTsps_,
                       links_.size());
}

unsigned
Topology::bisectionLinks() const
{
    // Canonical bisection: lower half of TSP ids vs upper half. For the
    // symmetric topologies built here this is a (near-)minimal cut.
    const TspId half = numTsps_ / 2;
    unsigned crossing = 0;
    for (LinkId l = 0; l < links_.size(); ++l) {
        if (!enabled_[l])
            continue;
        const bool a_low = links_[l].a < half;
        const bool b_low = links_[l].b < half;
        if (a_low != b_low)
            ++crossing;
    }
    return crossing;
}

} // namespace tsm
