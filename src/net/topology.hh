/**
 * @file
 * Scale-out system topologies (paper §2).
 *
 * A topology is a multigraph whose vertices are TSPs and whose edges
 * are bidirectional C2C links. Because the TSP is both endpoint and
 * router (the "glueless" direct network of Fig 4(c)), there are no
 * switch vertices.
 *
 * Packaging hierarchy (Fig 5/6):
 *  - a *node* is 8 TSPs in a 4U chassis. Each TSP has 7 local ports and
 *    4 global ports. Two node wirings are modeled: the fully-connected
 *    8-clique (default) and the triple-connected radix-8 ring torus the
 *    paper describes for nearest-neighbour pipelines (§4.4).
 *  - the *single-level* Dragonfly treats the node as a 32-port virtual
 *    router and fully connects up to 33 nodes (264 TSPs, 3-hop
 *    diameter). With fewer nodes, the spare global ports add parallel
 *    links per node pair.
 *  - the *two-level* Dragonfly treats the 9-node rack (72 TSPs) as the
 *    local group: 144 of the 288 per-rack global ports doubly-connect
 *    the 9 nodes (2x internal speedup), 144 connect to other racks, up
 *    to 145 racks (10,440 TSPs, 5-hop diameter).
 */

#ifndef TSM_NET_TOPOLOGY_HH
#define TSM_NET_TOPOLOGY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "net/link_params.hh"

namespace tsm {

/** Index of a TSP in the system. */
using TspId = std::uint32_t;

/** Index of a link in Topology::links(). */
using LinkId = std::uint32_t;

inline constexpr TspId kTspInvalid = ~TspId(0);
inline constexpr LinkId kLinkInvalid = ~LinkId(0);

/** How the 8 TSPs inside a node are wired with their 7 local ports. */
enum class NodeWiring : std::uint8_t
{
    FullMesh,   ///< all-to-all, 28 internal cables (paper §2.2)
    TripleRing, ///< radix-8 ring, 3 parallel links per neighbour (§4.4)
};

/** One bidirectional C2C link between two TSPs. */
struct Link
{
    TspId a = kTspInvalid;
    TspId b = kTspInvalid;

    /** Port index on each endpoint (0..6 local, 7..10 global). */
    std::uint8_t portA = 0;
    std::uint8_t portB = 0;

    LinkClass cls = LinkClass::IntraNode;

    /** The endpoint opposite `from`. */
    TspId
    peer(TspId from) const
    {
        return from == a ? b : a;
    }

    /** The port index on endpoint `at`. */
    std::uint8_t
    portAt(TspId at) const
    {
        return at == a ? portA : portB;
    }
};

/**
 * A complete system topology plus packaging metadata (which node/rack
 * each TSP occupies), with adjacency and path-enumeration queries used
 * by the SSN scheduler.
 */
class Topology
{
  public:
    /** A path is the sequence of link ids from source to destination. */
    using Path = std::vector<LinkId>;

    /** An empty topology; assign from one of the builders below. */
    Topology() = default;

    /** An 8-TSP node in isolation. */
    static Topology makeNode(NodeWiring wiring = NodeWiring::FullMesh);

    /**
     * A bare unidirectionally-symmetric ring of `n` TSPs (one link to
     * each neighbour, no chords). Not a deployment topology — it is
     * the torus configuration of paper §4.4's deadlock discussion,
     * used to study credit deadlock and virtual channels in the
     * hardware-routed baseline.
     */
    static Topology makeRing(unsigned n);

    /**
     * Single-level Dragonfly of `num_nodes` (2..33) fully-connected
     * nodes. Spare global ports become parallel links per node pair:
     * floor(32 / (num_nodes-1)) links per pair.
     */
    static Topology makeSingleLevel(unsigned num_nodes,
                                    NodeWiring wiring = NodeWiring::FullMesh);

    /**
     * Two-level Dragonfly of `num_racks` (2..145) racks of 9 nodes.
     * Intra-rack node pairs are doubly connected; inter-rack pairs get
     * floor(144 / (num_racks-1)) links (>= 1).
     */
    static Topology makeTwoLevel(unsigned num_racks,
                                 NodeWiring wiring = NodeWiring::FullMesh);

    /**
     * The natural topology for `num_tsps` processing elements: a subset
     * of a node (trivially connected) up to 8, single-level up to 264,
     * two-level beyond. num_tsps is rounded up to a whole node/rack.
     */
    static Topology forSystemSize(unsigned num_tsps);

    unsigned numTsps() const { return numTsps_; }
    unsigned numNodes() const { return numNodes_; }
    unsigned numRacks() const { return numRacks_; }
    const std::vector<Link> &links() const { return links_; }

    /** Node index of a TSP. */
    unsigned nodeOf(TspId t) const { return t / kTspsPerNode; }

    /** Rack index of a TSP (0 for single-level systems). */
    unsigned
    rackOf(TspId t) const
    {
        return nodeOf(t) / (numRacks_ > 1 ? kNodesPerRack : numNodes_);
    }

    /** Link ids incident to TSP `t`. */
    const std::vector<LinkId> &linksAt(TspId t) const { return adj_[t]; }

    /** Link id occupying port `port` of TSP `t`, if connected. */
    std::optional<LinkId> linkAtPort(TspId t, unsigned port) const;

    /** All (possibly parallel) links directly connecting `a` and `b`. */
    std::vector<LinkId> linksBetween(TspId a, TspId b) const;

    /** Hop distance between two TSPs (BFS over the multigraph). */
    unsigned distance(TspId src, TspId dst) const;

    /** Maximum pairwise distance (expensive; intended for tests). */
    unsigned diameter() const;

    /**
     * Worst-case end-to-end latency over minimal-latency routes,
     * estimated by running a latency-weighted Dijkstra from
     * `sample_sources` evenly spaced source TSPs (exact when
     * sample_sources >= numTsps()).
     */
    Tick latencyDiameterPs(unsigned sample_sources = 16) const;

    /** True if every TSP can reach every other. */
    bool connected() const;

    /**
     * Enumerate up to `limit` distinct shortest paths from src to dst.
     * Parallel links count as distinct paths.
     */
    std::vector<Path> minimalPaths(TspId src, TspId dst,
                                   unsigned limit = 64) const;

    /**
     * Enumerate up to `limit` simple paths of length at most
     * distance(src,dst) + max_extra_hops — the non-minimal path
     * diversity that SSN's deterministic load balancing spreads over.
     */
    std::vector<Path> paths(TspId src, TspId dst, unsigned max_extra_hops,
                            unsigned limit = 64) const;

    /** Total latency along a path (sum of per-hop latencies). */
    Tick pathLatencyPs(const Path &path) const;

    /**
     * Remove a node's TSPs from service (all their links), modeling the
     * runtime swapping in the hot spare (paper §4.5). Returns the list
     * of disabled link ids.
     */
    std::vector<LinkId> disableNode(unsigned node);

    /** True if the link is in service. */
    bool linkEnabled(LinkId l) const { return enabled_[l]; }

    /** Human-readable summary ("2-level dragonfly, 4 racks, ..."). */
    std::string describe() const;

    /**
     * Number of links crossing the canonical bisection (lower-id half
     * vs upper-id half of nodes/racks), used for the Fig 2 bandwidth
     * profile.
     */
    unsigned bisectionLinks() const;

  private:
    /** Append a link, assigning ports; panics if ports are exhausted. */
    void addLink(TspId a, TspId b, LinkClass cls);

    /** Wire the 8 TSPs of node `n` according to `wiring`. */
    void wireNode(unsigned n, NodeWiring wiring);

    void finalize();

    unsigned numTsps_ = 0;
    unsigned numNodes_ = 0;
    unsigned numRacks_ = 1;
    std::vector<Link> links_;
    std::vector<bool> enabled_;
    std::vector<std::vector<LinkId>> adj_;

    /** Next free local/global port per TSP during construction. */
    std::vector<std::uint8_t> nextLocalPort_;
    std::vector<std::uint8_t> nextGlobalPort_;
};

} // namespace tsm

#endif // TSM_NET_TOPOLOGY_HH
