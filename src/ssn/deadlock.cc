#include "ssn/deadlock.hh"

#include <map>
#include <set>
#include <vector>

namespace tsm {

CdgReport
channelDependencyCycles(const NetworkSchedule &sched, const Topology &topo)
{
    // Channel id: link * 2 + direction.
    using Chan = std::uint64_t;
    std::map<Chan, std::set<Chan>> adj;

    for (const auto &sv : sched.vectors) {
        for (std::size_t h = 0; h + 1 < sv.hops.size(); ++h) {
            const auto &a = sv.hops[h];
            const auto &b = sv.hops[h + 1];
            const Link &la = topo.links()[a.link];
            const Link &lb = topo.links()[b.link];
            const Chan ca = Chan(a.link) * 2 + (la.a == a.from ? 0 : 1);
            const Chan cb = Chan(b.link) * 2 + (lb.a == b.from ? 0 : 1);
            adj[ca].insert(cb);
        }
    }

    CdgReport report;
    for (const auto &[c, outs] : adj)
        report.edges += outs.size();

    // Iterative three-colour DFS for cycle detection.
    std::map<Chan, int> colour; // 0 white, 1 grey, 2 black
    for (const auto &[start, outs] : adj) {
        (void)outs;
        if (colour[start] != 0)
            continue;
        std::vector<std::pair<Chan, bool>> stack{{start, false}};
        while (!stack.empty()) {
            auto [node, done] = stack.back();
            stack.pop_back();
            if (done) {
                colour[node] = 2;
                continue;
            }
            if (colour[node] == 2)
                continue;
            if (colour[node] == 1) {
                // Revisiting a grey node via the stack replay; skip.
                continue;
            }
            colour[node] = 1;
            stack.push_back({node, true});
            auto it = adj.find(node);
            if (it == adj.end())
                continue;
            for (Chan next : it->second) {
                if (colour[next] == 1) {
                    report.cyclic = true;
                } else if (colour[next] == 0) {
                    stack.push_back({next, false});
                }
            }
        }
    }
    return report;
}

bool
holdAndWaitFree(const NetworkSchedule &sched, const Topology &topo)
{
    return validateSchedule(sched, topo).ok;
}

} // namespace tsm
