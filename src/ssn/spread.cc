#include "ssn/spread.hh"

#include <algorithm>

#include "common/log.hh"
#include "ssn/transfer.hh"

namespace tsm {

unsigned
SpreadPlan::pathsUsed() const
{
    unsigned used = 0;
    for (auto v : vectorsPerPath)
        used += v > 0;
    return used;
}

Cycle
pathCompletionCycles(std::uint32_t vectors, Cycle path_latency, Cycle window)
{
    if (vectors == 0)
        return 0;
    return Cycle(vectors - 1) * window + path_latency;
}

SpreadPlan
spreadVectors(std::uint32_t vectors, const std::vector<PathChoice> &paths,
              Cycle window)
{
    TSM_ASSERT(!paths.empty(), "no paths to spread over");
    SpreadPlan plan;
    plan.vectorsPerPath.assign(paths.size(), 0);

    // Water-filling: assign each vector to the path that would finish
    // it earliest. Equivalent to the optimal split for the pipelined
    // completion model, and deterministic (ties break to the lower
    // path index, i.e. the shorter path).
    std::vector<Cycle> finish(paths.size());
    for (std::size_t p = 0; p < paths.size(); ++p)
        finish[p] = paths[p].latencyCycles; // finish if given 1 vector

    for (std::uint32_t v = 0; v < vectors; ++v) {
        std::size_t best = 0;
        for (std::size_t p = 1; p < paths.size(); ++p)
            if (finish[p] < finish[best])
                best = p;
        ++plan.vectorsPerPath[best];
        plan.completionCycles = std::max(plan.completionCycles,
                                         finish[best]);
        finish[best] += window;
    }
    return plan;
}

std::vector<PathChoice>
toPathChoices(const Topology &topo, const std::vector<Topology::Path> &ps)
{
    std::vector<PathChoice> out;
    out.reserve(ps.size());
    for (const auto &path : ps) {
        PathChoice pc;
        pc.path = path;
        Cycle lat = 0;
        for (std::size_t h = 0; h < path.size(); ++h) {
            lat += flightCycles(topo.links()[path[h]].cls);
            if (h + 1 < path.size())
                lat += forwardCycles(); // store-and-forward pipeline
        }
        pc.latencyCycles = lat;
        out.push_back(std::move(pc));
    }
    std::sort(out.begin(), out.end(),
              [](const PathChoice &a, const PathChoice &b) {
                  if (a.latencyCycles != b.latencyCycles)
                      return a.latencyCycles < b.latencyCycles;
                  return a.path < b.path;
              });
    return out;
}

} // namespace tsm
