/**
 * @file
 * The SSN compile-time network scheduler — the paper's core
 * contribution (§4).
 *
 * Given the topology and the set of tensor transfers induced by the
 * partitioned model, the scheduler produces, for every vector of every
 * tensor, the exact hop-by-hop path and the exact departure cycle on
 * every link — "scheduled, not routed". All link contention is
 * resolved here; the emitted per-chip programs contain only Send/Recv
 * instructions with absolute issue cycles, and the network layer
 * panics if two vectors ever contend for a serialization window
 * (which, by construction, they cannot).
 */

#ifndef TSM_SSN_SCHEDULER_HH
#define TSM_SSN_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "arch/isa.hh"
#include "ssn/reservation.hh"
#include "ssn/spread.hh"
#include "ssn/transfer.hh"

namespace tsm {

/** Scheduler policy knobs. */
struct SsnConfig
{
    /** Extra hops allowed beyond minimal for non-minimal spreading. */
    unsigned maxExtraHops = 1;

    /** Cap on path diversity considered per transfer. */
    unsigned maxPaths = 8;

    /**
     * When false, all traffic rides the first minimal path — the
     * "minimal only" ablation of Fig 10.
     */
    bool loadBalance = true;
};

/** One scheduled hop of one vector. */
struct ScheduledHop
{
    LinkId link = kLinkInvalid;
    TspId from = kTspInvalid;

    /** Absolute departure cycle on the common time base. */
    Cycle depart = 0;

    /** Cycle at which the vector has landed at the hop's peer. */
    Cycle arrive = 0;
};

/** The full itinerary of one vector. */
struct ScheduledVector
{
    FlowId flow = kFlowInvalid;
    std::uint32_t seq = 0;
    std::vector<ScheduledHop> hops;

    Cycle departure() const { return hops.front().depart; }
    Cycle arrival() const { return hops.back().arrive; }
};

/** Per-flow summary. */
struct FlowSummary
{
    FlowId flow = kFlowInvalid;
    Cycle firstDeparture = 0;
    Cycle lastArrival = 0;
    std::uint32_t vectors = 0;
    unsigned pathsUsed = 0;
};

/**
 * Static (compile-time) contention attribution. Every cycle a vector
 * was pushed past its ready time during scheduling is charged either
 * to the flow whose reserved serialization window occupied the link
 * direction, or to the per-chip instruction-issue limit ("issue").
 * Keys are std::maps so iteration — and thus any serialized form —
 * is deterministic.
 */
struct ScheduleBlame
{
    /** blocked flow -> blocking flow -> cycles of induced delay. */
    std::map<FlowId, std::map<FlowId, Cycle>> flowPairCycles;

    /** link -> blocking flow -> cycles of delay it induced there. */
    std::map<LinkId, std::map<FlowId, Cycle>> linkFlowCycles;

    /** blocked flow -> total delay cycles (link + issue). */
    std::map<FlowId, Cycle> flowDelayCycles;

    /** All delay cycles across all vectors and hops. */
    Cycle totalDelayCycles = 0;

    /** Share of the delay due to the one-send-per-chip issue limit. */
    Cycle issueDelayCycles = 0;
};

/** The complete communication schedule. */
struct NetworkSchedule
{
    std::vector<ScheduledVector> vectors;
    std::unordered_map<FlowId, FlowSummary> flows;

    /** Cycle by which every vector has arrived. */
    Cycle makespan = 0;

    /** Completion time of one flow. */
    Cycle flowCompletion(FlowId f) const;

    /** Who delayed whom, resolved while the schedule was built. */
    ScheduleBlame blame;
};

/** Result of validating a schedule against the SSN invariants. */
struct ValidationReport
{
    bool ok = true;
    std::uint64_t windowsChecked = 0;
    std::string firstViolation;
};

class SsnScheduler
{
  public:
    SsnScheduler(const Topology &topo, SsnConfig config = {});

    /**
     * Schedule all transfers. Deterministic: identical inputs yield an
     * identical schedule. Transfers are processed in the given order
     * (the compiler orders them by data dependence).
     */
    NetworkSchedule schedule(const std::vector<TensorTransfer> &transfers);

    const Topology &topo() const { return *topo_; }
    const SsnConfig &config() const { return config_; }

  private:
    const Topology *topo_;
    SsnConfig config_;
};

/**
 * Verify the SSN invariants of a schedule independent of how it was
 * produced: (1) no two vectors overlap a serialization window on any
 * link direction; (2) each vector's hops are causally ordered with at
 * least the forward-pipeline gap at intermediate chips; (3) hop
 * endpoints chain src→dst. This check is the deadlock-freedom
 * argument made executable: every resource use is a disjoint,
 * pre-assigned time window, so no hold-and-wait cycle can exist.
 */
ValidationReport validateSchedule(const NetworkSchedule &sched,
                                  const Topology &topo);

/**
 * Lower a schedule to per-chip programs: Sends at sources and
 * intermediate hops, Recvs at intermediate hops and destinations, all
 * with absolute issue cycles. Intermediate hops buffer through stream
 * registers chosen conflict-free, spilling to SRAM under congestion
 * (virtual cut-through via SRAM).
 *
 * Destination chips deposit vector `seq` of flow f at
 * `dst_base[f] + seq` when a base address is provided; source chips
 * read vector `seq` from `src_base[f] + seq` when one is provided
 * (otherwise they transmit stream register 0).
 */
struct ProgramSet
{
    std::vector<Program> byChip;
};

ProgramSet buildPrograms(
    const NetworkSchedule &sched, const Topology &topo,
    const std::unordered_map<FlowId, LocalAddr> &dst_base = {},
    const std::unordered_map<FlowId, LocalAddr> &src_base = {});

/**
 * Like buildPrograms, but reports over-capacity schedules instead of
 * panicking: traffic so contended that a chip runs out of stream
 * registers (or a receive slides past the forward-pipeline margin)
 * returns false with a "tspN: ..." diagnosis in `*error`. This is
 * how the scenario layer rejects oversubscribing workloads up front —
 * the machine's buffering is a real, finite resource.
 */
bool tryBuildPrograms(
    const NetworkSchedule &sched, const Topology &topo,
    const std::unordered_map<FlowId, LocalAddr> &dst_base,
    const std::unordered_map<FlowId, LocalAddr> &src_base,
    ProgramSet &out, std::string *error);

} // namespace tsm

#endif // TSM_SSN_SCHEDULER_HH
