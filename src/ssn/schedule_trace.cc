#include "ssn/schedule_trace.hh"

#include <algorithm>

#include "common/units.hh"
#include "trace/span.hh"

namespace tsm {

namespace {

Tick
cycleToPs(Cycle c)
{
    return Tick(double(c) * kCorePeriodPs);
}

} // namespace

std::uint64_t
traceSchedule(Tracer &tracer, const NetworkSchedule &sched)
{
    if (!tracer.wants(TraceCat::Ssn))
        return 0;

    std::uint64_t emitted = 0;
    for (const ScheduledVector &v : sched.vectors) {
        for (std::size_t h = 0; h < v.hops.size(); ++h) {
            const ScheduledHop &hop = v.hops[h];
            tracer.emit({cycleToPs(hop.depart),
                         cycleToPs(hop.arrive) - cycleToPs(hop.depart),
                         TraceCat::Ssn, hop.link, "hop", std::int64_t(v.flow),
                         std::int64_t(v.seq),
                         spanChild(transferSpan(v.flow, v.seq), unsigned(h))});
            ++emitted;
        }
    }

    // flows is an unordered_map; sort ids so the emission order (and
    // hence any digest over it) is deterministic.
    std::vector<FlowId> ids;
    ids.reserve(sched.flows.size());
    for (const auto &[id, summary] : sched.flows)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (FlowId id : ids) {
        const FlowSummary &f = sched.flows.at(id);
        tracer.emit({cycleToPs(f.firstDeparture),
                     cycleToPs(f.lastArrival) - cycleToPs(f.firstDeparture),
                     TraceCat::Ssn, f.flow, "flow", std::int64_t(f.vectors),
                     std::int64_t(f.pathsUsed)});
        ++emitted;
    }

    tracer.emit({cycleToPs(sched.makespan), 0, TraceCat::Ssn, 0, "makespan",
                 std::int64_t(sched.makespan), std::int64_t(ids.size())});
    return emitted + 1;
}

} // namespace tsm
