/**
 * @file
 * Export an SSN compile-time schedule onto a trace timeline.
 *
 * The scheduler resolves all link contention before the simulation
 * starts, so the schedule itself is already a timeline: every vector
 * occupies an exact [depart, arrive) window on every link of its path.
 * traceSchedule() replays those windows into a Tracer as Ssn-category
 * events (cycles on the common time base converted to picoseconds at
 * the nominal core period), letting the Chrome exporter draw the
 * planned link occupancy next to the simulated execution.
 */

#ifndef TSM_SSN_SCHEDULE_TRACE_HH
#define TSM_SSN_SCHEDULE_TRACE_HH

#include "ssn/scheduler.hh"
#include "trace/trace.hh"

namespace tsm {

/**
 * Emit one "hop" event per scheduled link window (actor = link id,
 * a = flow, b = vector seq), one "flow" event per flow spanning first
 * departure to last arrival (actor = flow id, a = vectors, b = paths
 * used; flows in ascending id order), and a final "makespan" instant.
 * Returns the number of events emitted (0 when no sink wants Ssn).
 */
std::uint64_t traceSchedule(Tracer &tracer, const NetworkSchedule &sched);

} // namespace tsm

#endif // TSM_SSN_SCHEDULE_TRACE_HH
