/**
 * @file
 * The unit of scheduled communication: a tensor transfer, plus the
 * scheduler's cycle-granular hop timing model.
 *
 * Paper §4.1: the traffic pattern is known a priori from the model's
 * static computation graph; the compiler turns each tensor edge that
 * crosses a chip boundary into a TensorTransfer, and the SSN scheduler
 * (ssn/scheduler.hh) turns transfers into per-link, per-cycle vector
 * reservations.
 */

#ifndef TSM_SSN_TRANSFER_HH
#define TSM_SSN_TRANSFER_HH

#include <cstdint>
#include <vector>

#include "arch/chip.hh"
#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"

namespace tsm {

/** One tensor to move between two TSPs. */
struct TensorTransfer
{
    /** Compiler-assigned flow id (>= 1; 0 means "untagged"). */
    FlowId flow = kFlowInvalid;

    TspId src = kTspInvalid;
    TspId dst = kTspInvalid;

    /** Tensor size in 320-byte vectors. */
    std::uint32_t vectors = 0;

    /**
     * Earliest cycle (common time base) at which the source may begin
     * injecting — the producing sub-task's completion time.
     */
    Cycle earliest = 0;

    /** Convenience: size in bytes. */
    Bytes bytes() const { return Bytes(vectors) * kVectorBytes; }
};

/**
 * Cycles until a vector departing on a link of class `cls` has fully
 * landed at the peer: serialization + propagation, rounded up.
 * Intra-node: 24 + 217 = 241 cycles.
 */
constexpr Cycle
flightCycles(LinkClass cls)
{
    const double ps = kVectorSerializationPs + double(linkPropagationPs(cls));
    return Cycle(ps / kCorePeriodPs) + 1;
}

static_assert(flightCycles(LinkClass::IntraNode) == 241);

/**
 * Fixed receive/forward pipeline in cycles (clock-domain crossing,
 * FEC, SRAM cut-through buffer) before a landed vector may re-depart
 * from an intermediate hop. Together with flightCycles this yields the
 * paper's ~722 ns per-hop pipelined latency.
 */
constexpr Cycle
forwardCycles()
{
    return Cycle(double(kForwardOverheadPs) / kCorePeriodPs) + 1; // 228
}

/** Cycles after arrival before a scheduled Recv may safely issue. */
inline constexpr Cycle kRxMarginCycles = 2;

} // namespace tsm

#endif // TSM_SSN_TRANSFER_HH
