/**
 * @file
 * Deadlock analysis for software-scheduled routing (paper §4.4).
 *
 * Classic wormhole networks prove deadlock freedom by showing the
 * channel dependency graph (CDG) is acyclic, adding virtual channels
 * to break cycles. SSN takes the other horn: the CDG may well be
 * cyclic, but "routing deadlock is fundamentally caused when packets
 * hold on to a resource while requesting another"; under SSN every
 * vector's serialization windows are reserved disjointly in advance,
 * so no hold-and-wait condition can arise and VCs are unnecessary.
 *
 * This header makes that argument executable: channelDependencyCycles
 * detects cycles in the static CDG induced by a schedule, and
 * holdAndWaitFree verifies the schedule's time-disjointness (via
 * validateSchedule). A cyclic CDG together with a clean validation is
 * exactly the paper's claim.
 */

#ifndef TSM_SSN_DEADLOCK_HH
#define TSM_SSN_DEADLOCK_HH

#include "ssn/scheduler.hh"

namespace tsm {

/** Outcome of the CDG analysis. */
struct CdgReport
{
    /** Number of directed channel-to-channel dependencies. */
    std::uint64_t edges = 0;

    /** True if the CDG contains at least one cycle. */
    bool cyclic = false;
};

/**
 * Build the channel dependency graph of a schedule (channel = link
 * direction; an edge A→B exists when some vector traverses A then B)
 * and report whether it is cyclic.
 */
CdgReport channelDependencyCycles(const NetworkSchedule &sched,
                                  const Topology &topo);

/**
 * True if the schedule holds no resource while waiting for another:
 * every serialization window is disjoint and pre-assigned. Delegates
 * to validateSchedule; a true result is the deadlock-freedom proof.
 */
bool holdAndWaitFree(const NetworkSchedule &sched, const Topology &topo);

} // namespace tsm

#endif // TSM_SSN_DEADLOCK_HH
