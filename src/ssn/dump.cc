#include "ssn/dump.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "common/format.hh"

namespace tsm {

std::string
disassemble(const Program &program)
{
    std::string out;
    for (std::size_t i = 0; i < program.instrs.size(); ++i)
        out += format("{:>5}: {}\n", std::uint64_t(i),
                      program.instrs[i].str());
    return out;
}

std::string
dumpSchedule(const NetworkSchedule &sched, const Topology &topo,
             unsigned max_lines)
{
    struct Line
    {
        Cycle depart;
        std::string text;
    };
    std::vector<Line> lines;
    for (const auto &sv : sched.vectors) {
        for (const auto &hop : sv.hops) {
            const Link &link = topo.links()[hop.link];
            lines.push_back(
                {hop.depart,
                 format("[{:>7}..{:>7}] link{:<4} {}->{}  flow{}:{}",
                        hop.depart, hop.arrive, hop.link, hop.from,
                        link.peer(hop.from), sv.flow, sv.seq)});
        }
    }
    std::sort(lines.begin(), lines.end(),
              [](const Line &a, const Line &b) {
                  return a.depart < b.depart;
              });
    std::string out;
    unsigned emitted = 0;
    for (const auto &l : lines) {
        if (max_lines && emitted >= max_lines) {
            out += format("... ({} more windows)\n",
                          std::uint64_t(lines.size() - emitted));
            break;
        }
        out += l.text + '\n';
        ++emitted;
    }
    return out;
}

std::string
dumpFlowSummaries(const NetworkSchedule &sched)
{
    std::vector<const FlowSummary *> flows;
    for (const auto &[id, f] : sched.flows)
        flows.push_back(&f);
    std::sort(flows.begin(), flows.end(),
              [](const FlowSummary *a, const FlowSummary *b) {
                  return a->flow < b->flow;
              });
    std::string out;
    for (const FlowSummary *f : flows) {
        out += format(
            "flow {:>4}: {:>6} vectors over {} path(s), cycles "
            "{}..{}\n",
            f->flow, f->vectors, f->pathsUsed, f->firstDeparture,
            f->lastArrival);
    }
    return out;
}

std::string
dumpLinkUtilization(const NetworkSchedule &sched, const Topology &topo,
                    unsigned bar_width)
{
    const Cycle window = 24;
    std::map<std::uint64_t, std::uint64_t> windows; // dir -> count
    for (const auto &sv : sched.vectors) {
        for (const auto &hop : sv.hops) {
            const Link &link = topo.links()[hop.link];
            const std::uint64_t dir =
                std::uint64_t(hop.link) * 2 +
                (link.a == hop.from ? 0 : 1);
            ++windows[dir];
        }
    }
    std::string out;
    const double span = double(std::max<Cycle>(sched.makespan, 1));
    for (const auto &[dir, count] : windows) {
        const LinkId l = LinkId(dir / 2);
        const Link &link = topo.links()[l];
        const TspId from = dir % 2 == 0 ? link.a : link.b;
        const double util =
            std::min(1.0, double(count) * double(window) / span);
        const auto bar = unsigned(util * bar_width);
        out += format("link{:<4} {:>3}->{:<3} |{:<{}}| {:>5.1f}%\n", l,
                      from, link.peer(from),
                      std::string(bar, '#'), bar_width, util * 100.0);
    }
    return out;
}

} // namespace tsm
