/**
 * @file
 * The compile-time link-cycle reservation ledger.
 *
 * Paper §4.4: software explicitly schedules vectors on each physical
 * link "taking into account the channel bandwidth and latency of each
 * channel to ensure we never overflow the transmitter or underflow
 * the receiver". This ledger is the scheduler's source of truth: one
 * serialization window per vector per link direction, with conflict
 * detection. A schedule admitted by this ledger can never need
 * arbitration or back-pressure — which is also why it can never
 * deadlock: no vector ever holds one link while waiting for another;
 * every resource it will use is reserved, disjointly, in advance.
 */

#ifndef TSM_SSN_RESERVATION_HH
#define TSM_SSN_RESERVATION_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"

namespace tsm {

/**
 * Serialization window per vector in scheduler cycles: the ceiling of
 * one vector's wire serialization time (kVectorSerializationPs) in
 * core cycles. Shared by the ledger, the schedule validator, the
 * static analyzer and the what-if engine so they can never disagree
 * about how long a reservation occupies a link direction.
 */
inline constexpr Cycle kScheduleWindowCycles = 24;

/**
 * Per-link-direction occupancy of serialization windows, in scheduler
 * cycles. Each reservation occupies [start, start + window).
 */
class ReservationLedger
{
  public:
    /**
     * @param num_links Number of links in the topology (two
     *        directions tracked per link).
     * @param window_cycles Serialization window per vector (24).
     */
    explicit ReservationLedger(std::size_t num_links,
                               Cycle window_cycles = kScheduleWindowCycles);

    /**
     * Earliest cycle >= `earliest` at which direction (link, from_a)
     * has a free serialization window.
     */
    Cycle earliestFree(LinkId link, bool from_a, Cycle earliest) const;

    /**
     * Reserve [start, start+window) on the direction for `owner`.
     * Panics on overlap — the scheduler must have consulted
     * earliestFree. The owner flow is what contention attribution
     * reports when a later vector is pushed past this window.
     */
    void reserve(LinkId link, bool from_a, Cycle start,
                 FlowId owner = kFlowInvalid);

    /** True if [start, start+window) is free on the direction. */
    bool free(LinkId link, bool from_a, Cycle start) const;

    /** Total reserved windows across all directions. */
    std::uint64_t totalReservations() const { return total_; }

    /** Reserved windows on one direction. */
    std::size_t
    reservationsOn(LinkId link, bool from_a) const
    {
        return dirs_[index(link, from_a)].size();
    }

    /**
     * The last cycle at which any reservation ends (makespan of the
     * communication schedule), or 0 if empty.
     */
    Cycle horizon() const { return horizon_; }

    Cycle window() const { return window_; }

    /** One reserved serialization window and the flow holding it. */
    struct Occupant
    {
        Cycle start;
        FlowId owner;
    };

    /**
     * Reserved windows on (link, from_a) overlapping [from, to), in
     * start order. This is the static-blame query: every cycle a
     * vector was pushed past `from` is covered by these occupants
     * (plus scheduler-issue slots).
     */
    std::vector<Occupant> occupantsInRange(LinkId link, bool from_a,
                                           Cycle from, Cycle to) const;

  private:
    std::size_t
    index(LinkId link, bool from_a) const
    {
        return std::size_t(link) * 2 + (from_a ? 0 : 1);
    }

    /** start -> owning flow, per direction. */
    std::vector<std::map<Cycle, FlowId>> dirs_;
    Cycle window_;
    std::uint64_t total_ = 0;
    Cycle horizon_ = 0;
};

} // namespace tsm

#endif // TSM_SSN_RESERVATION_HH
