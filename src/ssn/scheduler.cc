#include "ssn/scheduler.hh"

#include <algorithm>
#include <set>

#include "common/format.hh"
#include "common/log.hh"

namespace tsm {

Cycle
NetworkSchedule::flowCompletion(FlowId f) const
{
    auto it = flows.find(f);
    TSM_ASSERT(it != flows.end(), "unknown flow");
    return it->second.lastArrival;
}

SsnScheduler::SsnScheduler(const Topology &topo, SsnConfig config)
    : topo_(&topo), config_(config)
{
    TSM_ASSERT(config_.maxPaths >= 1, "need at least one path");
}

namespace {

/**
 * Sparse per-chip instruction-issue slots: the model's C2C dispatch
 * issues at most one send instruction per cycle, so concurrent sends
 * from one chip must occupy distinct cycles (a single-sequence
 * simplification of the TSP's per-slice ICUs; see DESIGN.md).
 */
class IssueSlots
{
  public:
    explicit IssueSlots(unsigned num_chips) : used_(num_chips) {}

    bool
    free(TspId chip, Cycle c) const
    {
        return !used_[chip].contains(c);
    }

    Cycle
    earliestFree(TspId chip, Cycle c) const
    {
        while (!free(chip, c))
            ++c;
        return c;
    }

    void
    reserve(TspId chip, Cycle c)
    {
        TSM_ASSERT(used_[chip].insert(c).second,
                   "chip issue slot double-booked");
    }

  private:
    std::vector<std::set<Cycle>> used_;
};

/** Working state of one schedule() invocation. */
class ScheduleBuilder
{
  public:
    ScheduleBuilder(const Topology &topo, const SsnConfig &config)
        : topo_(topo), config_(config),
          ledger_(topo.links().size()), slots_(topo.numTsps())
    {}

    void
    add(const TensorTransfer &t, NetworkSchedule &out)
    {
        TSM_ASSERT(t.src != t.dst, "transfer to self");
        TSM_ASSERT(t.vectors > 0, "empty transfer");

        auto raw = topo_.paths(t.src, t.dst, config_.maxExtraHops,
                               config_.maxPaths * 4);
        TSM_ASSERT(!raw.empty(), "no path between transfer endpoints");
        auto choices = toPathChoices(topo_, raw);
        if (choices.size() > config_.maxPaths)
            choices.resize(config_.maxPaths);
        if (!config_.loadBalance)
            choices.resize(1);

        FlowSummary &summary = out.flows[t.flow];
        summary.flow = t.flow;
        summary.vectors = t.vectors;
        summary.firstDeparture = ~Cycle(0);

        std::vector<Cycle> next_inject(choices.size(), t.earliest);
        std::set<std::size_t> paths_used;

        for (std::uint32_t v = 0; v < t.vectors; ++v) {
            Candidate best;
            std::size_t best_path = 0;
            for (std::size_t p = 0; p < choices.size(); ++p) {
                Candidate cand =
                    evaluate(t.src, choices[p].path, next_inject[p]);
                if (cand.arrival < best.arrival) {
                    best = std::move(cand);
                    best_path = p;
                }
            }
            TSM_ASSERT(best.arrival != ~Cycle(0), "no feasible path");

            attributeDelay(t.flow, best, next_inject[best_path], out);

            for (const auto &hop : best.hops) {
                const Link &link = topo_.links()[hop.link];
                ledger_.reserve(hop.link, link.a == hop.from, hop.depart,
                                t.flow);
                slots_.reserve(hop.from, hop.depart);
            }
            next_inject[best_path] =
                best.hops.front().depart + ledger_.window();
            paths_used.insert(best_path);

            ScheduledVector sv;
            sv.flow = t.flow;
            sv.seq = v;
            sv.hops = std::move(best.hops);
            summary.firstDeparture =
                std::min(summary.firstDeparture, sv.departure());
            summary.lastArrival =
                std::max(summary.lastArrival, sv.arrival());
            out.makespan = std::max(out.makespan, sv.arrival());
            out.vectors.push_back(std::move(sv));
        }
        summary.pathsUsed = unsigned(paths_used.size());
    }

  private:
    struct Candidate
    {
        std::vector<ScheduledHop> hops;
        Cycle arrival = ~Cycle(0);
    };

    /**
     * Charge every cycle `cand` was pushed past its per-hop ready
     * times to the flows whose reserved windows stood in the way.
     * Must run before `cand`'s own windows are reserved. Occupant
     * windows on a direction are disjoint, so their clipped overlaps
     * with [ready, depart) partition the link-induced share exactly;
     * the uncovered remainder is the per-chip issue-slot limit.
     */
    void
    attributeDelay(FlowId flow, const Candidate &cand, Cycle ready0,
                   NetworkSchedule &out)
    {
        ScheduleBlame &blame = out.blame;
        Cycle ready = ready0;
        for (std::size_t h = 0; h < cand.hops.size(); ++h) {
            const ScheduledHop &hop = cand.hops[h];
            if (h > 0)
                ready = cand.hops[h - 1].arrive + forwardCycles();
            if (hop.depart > ready) {
                const Cycle delay = hop.depart - ready;
                const Link &link = topo_.links()[hop.link];
                Cycle covered = 0;
                for (const auto &occ : ledger_.occupantsInRange(
                         hop.link, link.a == hop.from, ready,
                         hop.depart)) {
                    const Cycle lo = std::max(ready, occ.start);
                    const Cycle hi = std::min(
                        hop.depart, occ.start + ledger_.window());
                    if (hi <= lo)
                        continue;
                    const Cycle share = hi - lo;
                    covered += share;
                    blame.flowPairCycles[flow][occ.owner] += share;
                    blame.linkFlowCycles[hop.link][occ.owner] += share;
                }
                blame.issueDelayCycles += delay - covered;
                blame.flowDelayCycles[flow] += delay;
                blame.totalDelayCycles += delay;
            }
        }
    }

    /** Chain one vector down `path`, starting no earlier than `ready0`. */
    Candidate
    evaluate(TspId src, const Topology::Path &path, Cycle ready0) const
    {
        Candidate cand;
        TspId at = src;
        Cycle ready = ready0;
        for (std::size_t h = 0; h < path.size(); ++h) {
            const LinkId l = path[h];
            const Link &link = topo_.links()[l];
            const bool from_a = link.a == at;
            // Departure requires the link serialization window and the
            // chip's issue slot to be simultaneously free.
            Cycle d = ready;
            for (;;) {
                d = ledger_.earliestFree(l, from_a, d);
                const Cycle d2 = slots_.earliestFree(at, d);
                if (d2 == d)
                    break;
                d = d2;
            }
            ScheduledHop hop;
            hop.link = l;
            hop.from = at;
            hop.depart = d;
            hop.arrive = d + flightCycles(link.cls);
            cand.hops.push_back(hop);
            at = link.peer(at);
            ready = hop.arrive + forwardCycles();
        }
        cand.arrival = cand.hops.back().arrive;
        return cand;
    }

    const Topology &topo_;
    const SsnConfig &config_;
    ReservationLedger ledger_;
    IssueSlots slots_;
};

} // namespace

NetworkSchedule
SsnScheduler::schedule(const std::vector<TensorTransfer> &transfers)
{
    NetworkSchedule out;
    ScheduleBuilder builder(*topo_, config_);
    for (const auto &t : transfers) {
        TSM_ASSERT(t.flow != kFlowInvalid && t.flow != 0,
                   "transfers need flow ids >= 1");
        builder.add(t, out);
    }
    return out;
}

ValidationReport
validateSchedule(const NetworkSchedule &sched, const Topology &topo)
{
    ValidationReport report;
    const Cycle window = 24;
    // Replay every serialization window into a fresh occupancy map.
    std::map<std::pair<std::uint64_t, Cycle>, FlowId> occupied;

    auto fail = [&report](std::string why) {
        if (report.ok) {
            report.ok = false;
            report.firstViolation = std::move(why);
        }
    };

    for (const auto &sv : sched.vectors) {
        if (sv.hops.empty()) {
            fail(format("flow {} seq {}: empty itinerary", sv.flow, sv.seq));
            continue;
        }
        TspId at = sv.hops.front().from;
        Cycle prev_arrive = 0;
        for (std::size_t h = 0; h < sv.hops.size(); ++h) {
            const auto &hop = sv.hops[h];
            const Link &link = topo.links()[hop.link];
            // (3) endpoints chain.
            if (hop.from != at) {
                fail(format("flow {} seq {}: hop {} departs from tsp{}, "
                            "expected tsp{}",
                            sv.flow, sv.seq, h, hop.from, at));
                break;
            }
            if (link.a != at && link.b != at) {
                fail(format("flow {} seq {}: hop {} uses a link not at "
                            "tsp{}",
                            sv.flow, sv.seq, h, at));
                break;
            }
            // (2) causality with the forward-pipeline gap.
            if (h > 0 && hop.depart < prev_arrive + forwardCycles()) {
                fail(format("flow {} seq {}: hop {} departs {} cycles "
                            "after landing (< forward pipeline {})",
                            sv.flow, sv.seq, h, hop.depart - prev_arrive,
                            forwardCycles()));
            }
            if (hop.arrive != hop.depart + flightCycles(link.cls)) {
                fail(format("flow {} seq {}: hop {} arrival inconsistent",
                            sv.flow, sv.seq, h));
            }
            // (1) disjoint serialization windows: record each window's
            // start; any other start within +-(window-1) conflicts.
            const std::uint64_t dir =
                std::uint64_t(hop.link) * 2 + (link.a == at ? 0 : 1);
            const auto key = std::pair(dir, hop.depart);
            for (Cycle probe = hop.depart >= window - 1
                                   ? hop.depart - (window - 1)
                                   : 0;
                 probe < hop.depart + window; ++probe) {
                auto it = occupied.find(std::pair(dir, probe));
                if (it != occupied.end()) {
                    fail(format("flow {} seq {}: serialization window at "
                                "cycle {} on link {} overlaps flow {}",
                                sv.flow, sv.seq, hop.depart, hop.link,
                                it->second));
                    break;
                }
            }
            occupied.emplace(key, sv.flow);
            ++report.windowsChecked;

            at = link.peer(at);
            prev_arrive = hop.arrive;
        }
    }
    return report;
}

bool
tryBuildPrograms(const NetworkSchedule &sched, const Topology &topo,
                 const std::unordered_map<FlowId, LocalAddr> &dst_base,
                 const std::unordered_map<FlowId, LocalAddr> &src_base,
                 ProgramSet &out, std::string *error)
{
    out = ProgramSet{};
    out.byChip.resize(topo.numTsps());
    auto capacityFail = [error](TspId chip, const std::string &what) {
        if (error)
            *error = "tsp" + std::to_string(chip) + ": " + what;
        return false;
    };

    // Gather per-chip instruction events, then sort by issue cycle.
    struct Event
    {
        Cycle cycle;
        bool fixed; // sends keep their exact cycle; recvs may slide
        Instr instr;
    };
    std::vector<std::vector<Event>> events(topo.numTsps());

    // Per-chip stream registers: freeAt[s] = first cycle the register
    // may be overwritten.
    std::vector<std::array<Cycle, kNumStreams>> stream_free(
        topo.numTsps());
    for (auto &sf : stream_free)
        sf.fill(0);

    // Stream 0 is reserved for the caller-preloaded payload
    // convention; the allocator hands out 1..63.
    auto try_alloc_stream = [&](TspId chip, Cycle from,
                                Cycle until) -> int {
        for (unsigned s = 1; s < kNumStreams; ++s) {
            if (stream_free[chip][s] <= from) {
                stream_free[chip][s] = until;
                return int(s);
            }
        }
        return -1;
    };
    const std::string kOverflow =
        "more than " + std::to_string(kNumStreams) +
        " vectors in flight through stream registers";

    // Cut-through spill buffer: when a forwarded vector must be held
    // longer than the stream registers can cover, it is parked in
    // local SRAM — "we use the local SRAM storage on each TSP to
    // provide intermediate buffering" (paper §2.3). The spill region
    // grows upward from the top of memory, cycling within a window.
    constexpr std::uint32_t kSpillWords = 16384;
    constexpr std::uint32_t kSpillBase = LocalAddr::kWords - kSpillWords;
    std::vector<std::uint32_t> spill_cursor(topo.numTsps(), 0);
    auto alloc_spill = [&](TspId chip) {
        const std::uint32_t word =
            kSpillBase + (spill_cursor[chip]++ % kSpillWords);
        return LocalAddr::unflatten(word);
    };

    for (const auto &sv : sched.vectors) {
        for (std::size_t h = 0; h < sv.hops.size(); ++h) {
            const auto &hop = sv.hops[h];
            const Link &link = topo.links()[hop.link];
            const TspId to = link.peer(hop.from);
            const unsigned tx_port = link.portAt(hop.from);
            const unsigned rx_port = link.portAt(to);
            const bool last_hop = h + 1 == sv.hops.size();

            // Receive side: at intermediate hops the vector is parked
            // in a stream register (or spilled to SRAM under
            // pressure) until its onward send; at the destination it
            // is received and (optionally) written to memory.
            const Cycle rx_cycle = hop.arrive + kRxMarginCycles;
            const Cycle hold_until =
                last_hop ? rx_cycle + 2 : sv.hops[h + 1].depart + 1;
            // A vector that must wait long for its onward link (the
            // link is congested with other scheduled traffic) parks
            // in SRAM rather than monopolizing a stream register.
            constexpr Cycle kMaxStreamHold = 400;
            int stream = -1;
            if (last_hop || hold_until - rx_cycle <= kMaxStreamHold)
                stream = try_alloc_stream(to, rx_cycle, hold_until);

            if (stream < 0) {
                if (last_hop)
                    return capacityFail(
                        to, "destination receive could not get a "
                            "stream register — " + kOverflow);
                // Spill path: Recv -> Write(SRAM) ... Read -> Send,
                // with two short stream holds instead of a long one.
                const Cycle send_at = sv.hops[h + 1].depart;
                const int s_in =
                    try_alloc_stream(to, rx_cycle, rx_cycle + 2);
                const int s_out =
                    try_alloc_stream(to, send_at - 4, send_at + 1);
                if (s_in < 0 || s_out < 0)
                    return capacityFail(to, kOverflow);
                const LocalAddr scratch = alloc_spill(to);

                Instr rx;
                rx.op = Op::Recv;
                rx.port = std::uint8_t(rx_port);
                rx.dst = std::uint8_t(s_in);
                rx.flow = sv.flow;
                rx.seq = sv.seq;
                rx.hop = std::uint8_t(h);
                rx.lastHop = false;
                rx.issueAt = rx_cycle;
                events[to].push_back({rx_cycle, false, rx});

                Instr wr;
                wr.op = Op::Write;
                wr.srcA = std::uint8_t(s_in);
                wr.addr = scratch;
                wr.issueAt = rx_cycle + 1;
                events[to].push_back({rx_cycle + 1, false, wr});

                Instr rd;
                rd.op = Op::Read;
                rd.dst = std::uint8_t(s_out);
                rd.addr = scratch;
                rd.issueAt = send_at - 4;
                events[to].push_back({send_at - 4, false, rd});

                Instr fwd;
                fwd.op = Op::Send;
                fwd.port = std::uint8_t(
                    topo.links()[sv.hops[h + 1].link].portAt(to));
                fwd.srcA = std::uint8_t(s_out);
                fwd.flow = sv.flow;
                fwd.seq = sv.seq;
                fwd.hop = std::uint8_t(h + 1);
                fwd.issueAt = send_at;
                events[to].push_back({send_at, true, fwd});
            } else {
                Instr rx;
                rx.op = Op::Recv;
                rx.port = std::uint8_t(rx_port);
                rx.dst = std::uint8_t(stream);
                rx.flow = sv.flow;
                rx.seq = sv.seq;
                rx.hop = std::uint8_t(h);
                rx.lastHop = last_hop;
                rx.issueAt = rx_cycle;
                events[to].push_back({rx_cycle, false, rx});

                if (!last_hop) {
                    // Onward send from the intermediate hop.
                    Instr fwd;
                    fwd.op = Op::Send;
                    fwd.port = std::uint8_t(
                        topo.links()[sv.hops[h + 1].link].portAt(to));
                    fwd.srcA = std::uint8_t(stream);
                    fwd.flow = sv.flow;
                    fwd.seq = sv.seq;
                    fwd.hop = std::uint8_t(h + 1);
                    fwd.issueAt = sv.hops[h + 1].depart;
                    events[to].push_back(
                        {sv.hops[h + 1].depart, true, fwd});
                }
            }

            if (last_hop) {
                auto it = dst_base.find(sv.flow);
                if (it != dst_base.end()) {
                    Instr wr;
                    wr.op = Op::Write;
                    wr.srcA = std::uint8_t(stream);
                    wr.addr = LocalAddr::unflatten(it->second.flatten() +
                                                   sv.seq);
                    wr.issueAt = rx_cycle + 1;
                    events[to].push_back({rx_cycle + 1, false, wr});
                }
            }

            if (h == 0) {
                // Source send. With a src_base the vector is read
                // from memory into a briefly-held stream register
                // just before departure; otherwise stream register 0
                // carries the payload by convention.
                unsigned tx_stream = 0;
                if (auto it = src_base.find(sv.flow);
                    it != src_base.end()) {
                    const Cycle read_at =
                        hop.depart >= 12 ? hop.depart - 12 : 0;
                    const int s = try_alloc_stream(hop.from, read_at,
                                                   hop.depart + 1);
                    if (s < 0)
                        return capacityFail(hop.from, kOverflow);
                    tx_stream = unsigned(s);
                    Instr rd;
                    rd.op = Op::Read;
                    rd.dst = std::uint8_t(tx_stream);
                    rd.addr = LocalAddr::unflatten(it->second.flatten() +
                                                   sv.seq);
                    rd.issueAt = read_at;
                    events[hop.from].push_back({read_at, false, rd});
                }
                Instr tx;
                tx.op = Op::Send;
                tx.port = std::uint8_t(tx_port);
                tx.srcA = std::uint8_t(tx_stream);
                tx.flow = sv.flow;
                tx.seq = sv.seq;
                tx.hop = 0;
                tx.issueAt = hop.depart;
                events[hop.from].push_back({hop.depart, true, tx});
            }
        }
    }

    for (TspId chip = 0; chip < topo.numTsps(); ++chip) {
        auto &ev = events[chip];
        // Sends keep their exact cycles (their link windows are
        // reserved and guaranteed distinct by IssueSlots); receives
        // and writes slide onto the nearest later cycle that is free
        // of sends and of each other.
        std::set<Cycle> send_cycles;
        for (const auto &e : ev)
            if (e.fixed)
                TSM_ASSERT(send_cycles.insert(e.cycle).second,
                           "two sends scheduled on one chip at one cycle");
        std::stable_sort(ev.begin(), ev.end(),
                         [](const Event &a, const Event &b) {
                             return a.cycle < b.cycle;
                         });
        Cycle last_flexible = 0;
        bool any_flexible = false;
        for (auto &e : ev) {
            Cycle c = e.cycle;
            if (!e.fixed) {
                if (any_flexible && c <= last_flexible)
                    c = last_flexible + 1;
                while (send_cycles.contains(c))
                    ++c;
                if (c - e.cycle >= 64)
                    return capacityFail(
                        chip, "receive slid too far from its arrival; "
                              "issue pressure exceeds the "
                              "forward-pipeline margin");
                last_flexible = c;
                any_flexible = true;
            }
            e.instr.issueAt = c;
        }
        // Merge into one strictly increasing instruction sequence.
        std::stable_sort(ev.begin(), ev.end(),
                         [](const Event &a, const Event &b) {
                             return a.instr.issueAt < b.instr.issueAt;
                         });
        Cycle prev = 0;
        bool first = true;
        for (const auto &e : ev) {
            TSM_ASSERT(first || e.instr.issueAt > prev,
                       "instruction issue cycles not strictly increasing");
            prev = e.instr.issueAt;
            first = false;
            out.byChip[chip].instrs.push_back(e.instr);
        }

        // Dataflow sanity: every Send from a managed stream register
        // must consume a value written (Recv/Read) after that
        // stream's previous Send — catches any receive/read that slid
        // past its consumer.
        std::array<Cycle, kNumStreams> last_write;
        std::array<Cycle, kNumStreams> last_consume;
        last_write.fill(0);
        last_consume.fill(0);
        bool wrote0 = false;
        for (const auto &i : out.byChip[chip].instrs) {
            if (i.op == Op::Recv || i.op == Op::Read) {
                last_write[i.dst] = i.issueAt;
                wrote0 |= i.dst == 0;
            } else if (i.op == Op::Send) {
                if (i.srcA != 0 || wrote0) {
                    if (last_write[i.srcA] <= last_consume[i.srcA] ||
                        last_write[i.srcA] >= i.issueAt)
                        return capacityFail(
                            chip,
                            "send at cycle " +
                                std::to_string(i.issueAt) +
                                " consumes stream " +
                                std::to_string(unsigned(i.srcA)) +
                                " with no fresh value — an upstream "
                                "read/receive slid past it");
                }
                last_consume[i.srcA] = i.issueAt;
            }
        }
    }
    return true;
}

ProgramSet
buildPrograms(const NetworkSchedule &sched, const Topology &topo,
              const std::unordered_map<FlowId, LocalAddr> &dst_base,
              const std::unordered_map<FlowId, LocalAddr> &src_base)
{
    ProgramSet out;
    std::string error;
    const bool ok =
        tryBuildPrograms(sched, topo, dst_base, src_base, out, &error);
    TSM_ASSERT(ok, "buildPrograms: {}", error);
    return out;
}

} // namespace tsm
