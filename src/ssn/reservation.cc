#include "ssn/reservation.hh"

#include "common/log.hh"

namespace tsm {

ReservationLedger::ReservationLedger(std::size_t num_links,
                                     Cycle window_cycles)
    : dirs_(num_links * 2), window_(window_cycles)
{
    TSM_ASSERT(window_cycles > 0, "zero-width serialization window");
}

Cycle
ReservationLedger::earliestFree(LinkId link, bool from_a,
                                Cycle earliest) const
{
    const auto &dir = dirs_[index(link, from_a)];
    Cycle cand = earliest;
    // A window starting at `cand` conflicts with any reservation r
    // with r.start < cand + window and r.start + window > cand.
    auto it = dir.lower_bound(cand >= window_ ? cand - window_ + 1 : 0);
    while (it != dir.end() && it->first < cand + window_) {
        // Overlap: jump past this reservation and re-check.
        cand = it->first + window_;
        ++it;
    }
    return cand;
}

bool
ReservationLedger::free(LinkId link, bool from_a, Cycle start) const
{
    return earliestFree(link, from_a, start) == start;
}

void
ReservationLedger::reserve(LinkId link, bool from_a, Cycle start,
                           FlowId owner)
{
    auto &dir = dirs_[index(link, from_a)];
    TSM_ASSERT(free(link, from_a, start),
               "link-cycle conflict: double-booked serialization window");
    dir.emplace(start, owner);
    ++total_;
    if (start + window_ > horizon_)
        horizon_ = start + window_;
}

std::vector<ReservationLedger::Occupant>
ReservationLedger::occupantsInRange(LinkId link, bool from_a,
                                    Cycle from, Cycle to) const
{
    std::vector<Occupant> out;
    const auto &dir = dirs_[index(link, from_a)];
    auto it = dir.lower_bound(from >= window_ ? from - window_ + 1 : 0);
    for (; it != dir.end() && it->first < to; ++it)
        out.push_back({it->first, it->second});
    return out;
}

} // namespace tsm
