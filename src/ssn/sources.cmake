tsm_module(ssn
    reservation.cc
    spread.cc
    scheduler.cc
    deadlock.cc
    dump.cc
    schedule_trace.cc
)
