/**
 * @file
 * Human-readable listings of compiled artifacts: per-chip program
 * disassembly and schedule timelines. These are the views a user of
 * the real toolchain would get from its assembler/inspector, and what
 * you paste into a bug report when a schedule looks wrong.
 */

#ifndef TSM_SSN_DUMP_HH
#define TSM_SSN_DUMP_HH

#include <string>

#include "arch/isa.hh"
#include "ssn/scheduler.hh"

namespace tsm {

/** Disassemble one program, one instruction per line. */
std::string disassemble(const Program &program);

/**
 * Render a schedule as a per-link timeline: each line is one
 * serialization window (cycle range, link, direction, flow:seq).
 * Sorted by start cycle; capped at `max_lines` (0 = unlimited).
 */
std::string dumpSchedule(const NetworkSchedule &sched,
                         const Topology &topo, unsigned max_lines = 0);

/** One-line-per-flow summary of a schedule. */
std::string dumpFlowSummaries(const NetworkSchedule &sched);

/**
 * ASCII link-utilization profile of a schedule: one bar per link
 * direction that carried traffic, showing its busy fraction of the
 * makespan — the at-a-glance view of how well the deterministic load
 * balancing spread the traffic.
 */
std::string dumpLinkUtilization(const NetworkSchedule &sched,
                                const Topology &topo,
                                unsigned bar_width = 40);

} // namespace tsm

#endif // TSM_SSN_DUMP_HH
