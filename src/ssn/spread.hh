/**
 * @file
 * Deterministic load balancing: how many vectors of a tensor go down
 * each (minimal or non-minimal) path (paper §4.3, Fig 10).
 *
 * The decision the hardware-routed world makes dynamically per packet
 * is made here, once, at compile time, from the tensor's physical data
 * volume: small tensors ride the minimal path alone (extra hops cost
 * more than the spread saves); large tensors are spread across the
 * path diversity so that every path finishes at about the same time
 * (water-filling). The crossover emerges from serialization rate vs
 * per-hop latency — about 8 KB for the intra-node case, matching
 * Fig 10.
 */

#ifndef TSM_SSN_SPREAD_HH
#define TSM_SSN_SPREAD_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "net/topology.hh"

namespace tsm {

/** A path with its latency, as seen by the spreader. */
struct PathChoice
{
    Topology::Path path;

    /** Pipelined latency of the path's last hop landing, in cycles. */
    Cycle latencyCycles = 0;
};

/** The spreader's verdict: vectors per path (aligned with input). */
struct SpreadPlan
{
    std::vector<std::uint32_t> vectorsPerPath;

    /** Predicted completion (cycles after injection start). */
    Cycle completionCycles = 0;

    /** Number of paths actually used. */
    unsigned pathsUsed() const;
};

/**
 * Pipelined completion time of `vectors` vectors down one path whose
 * landing latency is `path_latency`: the last vector departs after
 * (vectors-1) serialization windows and lands path_latency later.
 */
Cycle pathCompletionCycles(std::uint32_t vectors, Cycle path_latency,
                           Cycle window = 24);

/**
 * Optimal deterministic split of `vectors` across `paths`
 * (water-filling on completion time). Paths must be sorted by latency
 * (minimal first); the plan is deterministic for identical inputs.
 */
SpreadPlan spreadVectors(std::uint32_t vectors,
                         const std::vector<PathChoice> &paths,
                         Cycle window = 24);

/**
 * Convert topology paths to PathChoices with the scheduler's hop
 * timing model (flight + forward per intermediate hop).
 */
std::vector<PathChoice> toPathChoices(const Topology &topo,
                                      const std::vector<Topology::Path> &ps);

} // namespace tsm

#endif // TSM_SSN_SPREAD_HH
