/**
 * @file
 * ASCII rendering of a sampled timeline: the core of tools/tsm_top.
 *
 * From a `tsm-timeline-v1` document, draws
 *
 *  - a links x windows utilization heatmap (top links by traffic),
 *  - a chips x windows issue-slot occupancy heatmap,
 *  - the bottleneck-phase ribbon (one regime character per column)
 *    with the per-phase summary table,
 *
 * all downsampled to a fixed column budget, so a multi-second run
 * still fits a terminal. Shading uses a ten-step ramp; each column
 * shows the *maximum* utilization of the windows it covers, because a
 * transient hotspot is exactly what the plot exists to surface.
 */

#ifndef TSM_TELEMETRY_RENDER_HH
#define TSM_TELEMETRY_RENDER_HH

#include <string>

#include "common/json.hh"

namespace tsm {

/** Layout knobs for renderTimelineTop. */
struct TopOptions
{
    /** Maximum heatmap columns (windows are bucketed to fit). */
    unsigned cols = 64;

    /** Links shown, busiest first. */
    unsigned maxLinks = 12;

    /** Chips shown, busiest first. */
    unsigned maxChips = 12;
};

/** The ten-step utilization shading ramp, 0% to 100%. */
inline constexpr const char *kShadeRamp = " .:-=+*#%@";

/** Shade character for a utilization in [0, inf). */
char shadeChar(double util);

/**
 * Render the heatmaps + phase ribbon for a `tsm-timeline-v1`
 * document. Returns an explanatory line instead when the document
 * holds no windows.
 */
std::string renderTimelineTop(const Json &timeline,
                              const TopOptions &opts = {});

} // namespace tsm

#endif // TSM_TELEMETRY_RENDER_HH
