#include "telemetry/progress.hh"

#include <cmath>
#include <string_view>

namespace tsm {

ProgressSink::ProgressSink(double megacycles, std::FILE *out) : out_(out)
{
    if (megacycles > 0)
        intervalPs_ =
            Tick(std::llround(megacycles * 1e6 * kCorePeriodPs));
    nextBeat_ = intervalPs_;
}

void
ProgressSink::line(Tick tick)
{
    if (!out_)
        return;
    std::fprintf(out_,
                 "progress: %.2f Mcycle, %llu events, %llu active "
                 "transfers\n",
                 double(tick) / kCorePeriodPs / 1e6,
                 (unsigned long long)events_,
                 (unsigned long long)activeTransfers_);
    std::fflush(out_);
    ++lines_;
}

void
ProgressSink::event(const TraceEvent &ev)
{
    ++events_;
    lastTick_ = std::max(lastTick_, ev.tick);
    if (ev.cat == TraceCat::Ssn) {
        const std::string_view name(ev.name);
        if (name == "span_open")
            ++activeTransfers_;
        else if (name == "span_close" && activeTransfers_ > 0)
            --activeTransfers_;
    }
    if (intervalPs_ == 0)
        return;
    while (lastTick_ >= nextBeat_) {
        line(nextBeat_);
        nextBeat_ += intervalPs_;
    }
}

void
ProgressSink::finish()
{
    if (finished_ || intervalPs_ == 0)
        return;
    finished_ = true;
    line(lastTick_);
}

} // namespace tsm
