#include "telemetry/timeline.hh"

#include <algorithm>
#include <cmath>

#include "telemetry/phase.hh"

namespace tsm {

TimelineSampler::TimelineSampler(Cycle windowCycles)
    : windowCycles_(windowCycles ? windowCycles : kDefaultWindowCycles)
{
    for (unsigned o = 0; o < kNumOps; ++o)
        opByName_.emplace(opName(Op(o)), Op(o));
}

void
TimelineSampler::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    hasSeed_ = true;
}

Cycle
TimelineSampler::tickToCycle(Tick tick) const
{
    // Truncating division at the nominal core period: an event landing
    // exactly on a window-boundary cycle opens the new window.
    return Cycle(double(tick) / kCorePeriodPs);
}

std::uint64_t
TimelineSampler::numWindows() const
{
    std::uint64_t last = 0;
    bool any = false;
    for (const auto &[chip, windows] : chips_)
        if (!windows.empty()) {
            last = std::max(last, windows.rbegin()->first);
            any = true;
        }
    for (const auto &[link, windows] : links_)
        if (!windows.empty()) {
            last = std::max(last, windows.rbegin()->first);
            any = true;
        }
    if (!hac_.empty()) {
        last = std::max(last, hac_.rbegin()->first);
        any = true;
    }
    return any ? last + 1 : 0;
}

void
TimelineSampler::event(const TraceEvent &ev)
{
    ++events_;
    switch (ev.cat) {
      case TraceCat::Chip:
        chipEvent(ev);
        break;
      case TraceCat::Net:
        netEvent(ev);
        break;
      case TraceCat::Ssn:
        ssnEvent(ev);
        break;
      case TraceCat::Sync:
        syncEvent(ev);
        break;
      case TraceCat::Runtime:
        if (markers_.size() < kMarkerCap)
            markers_.push_back(
                {ev.tick, ev.dur, "runtime", ev.name, ev.actor});
        break;
      default:
        break;
    }
}

void
TimelineSampler::chargeRange(TspId chip, Cycle from, Cycle to,
                             OpTimeClass cls, FuncUnit unit)
{
    if (to <= from)
        return;
    spanCycles_ = std::max(spanCycles_, to);
    auto &windows = chips_[chip];
    Cycle at = from;
    while (at < to) {
        const std::uint64_t w = windowOf(at);
        const Cycle windowEnd = (w + 1) * windowCycles_;
        const Cycle slice = std::min(to, windowEnd) - at;
        ChipWindow &cw = windows[w];
        switch (cls) {
          case OpTimeClass::Busy:
            cw.busy[unsigned(unit)] += slice;
            break;
          case OpTimeClass::Stall:
            cw.stall += slice;
            break;
          case OpTimeClass::Idle:
            cw.idle += slice;
            break;
        }
        at += slice;
    }
}

void
TimelineSampler::charge(TspId chip, Pending &pend, Cycle until)
{
    if (!pend.valid)
        return;
    // Identical arithmetic to ProfilerSink::charge, split per window:
    // the occupied prefix of the gap goes to the instruction's class,
    // the remainder is idle by definition.
    const Cycle gap = until >= pend.cycle ? until - pend.cycle : 0;
    const Cycle occupied = std::min(gap, pend.durCycles);
    chargeRange(chip, pend.cycle, pend.cycle + occupied, pend.cls,
                pend.unit);
    chargeRange(chip, pend.cycle + occupied, until, OpTimeClass::Idle,
                pend.unit);
    pend.valid = false;
}

void
TimelineSampler::chipEvent(const TraceEvent &ev)
{
    const TspId chip = ev.actor;
    const Cycle cycle = Cycle(ev.b);
    Pending &pend = pending_[chip];
    charge(chip, pend, cycle);

    if (std::string_view(ev.name) == "halt")
        return;

    Pending next;
    next.valid = true;
    next.cycle = cycle;
    next.durCycles = Cycle(std::llround(double(ev.dur) / kCorePeriodPs));
    if (std::string_view(ev.name) == "poll_wait") {
        next.unit = FuncUnit::SXM;
        next.cls = OpTimeClass::Stall;
    } else {
        auto it = opByName_.find(std::string_view(ev.name));
        if (it == opByName_.end())
            return; // unknown marker: contributes nothing
        next.unit = opUnit(it->second);
        next.cls = opTimeClass(it->second);
        ++chips_[chip][windowOf(cycle)].instrs;
    }
    pend = next;
}

void
TimelineSampler::netEvent(const TraceEvent &ev)
{
    const std::string_view name(ev.name);
    const LinkId link = LinkId(ev.actor);
    const std::uint64_t w = windowOf(tickToCycle(ev.tick));
    if (name == "tx") {
        LinkWindow &lw = links_[link][w];
        ++lw.flits;
        // Same per-flit serialization charge as LinkAccount::busyPs,
        // attributed whole to the window the transmit starts in, so
        // window sums match the whole-run account exactly.
        lw.busyPs += Tick(std::llround(kVectorSerializationPs));
        spanCycles_ = std::max(spanCycles_, tickToCycle(ev.tick) + 1);
    } else if (name == "rx") {
        const FlowId flow = FlowId(ev.a);
        if (flow != kFlowHacExchange && flow != kFlowSyncToken &&
            flow != kFlowInvalid) {
            inFlight_[{flow, std::uint32_t(ev.b)}].push_back(
                {ev.tick, link});
            const unsigned depth = ++queueDepth_[link];
            LinkWindow &lw = links_[link][w];
            lw.queueHwm = std::max(lw.queueHwm, depth);
            spanCycles_ = std::max(spanCycles_, tickToCycle(ev.tick) + 1);
        }
    } else if (name == "mbe") {
        ++links_[link][w].mbes;
    }
}

void
TimelineSampler::ssnEvent(const TraceEvent &ev)
{
    const std::string_view name(ev.name);
    if (name == "flow" || name == "makespan") {
        if (markers_.size() < kMarkerCap)
            markers_.push_back({ev.tick, ev.dur, "ssn", ev.name, ev.actor});
        return;
    }
    if (name != "recv" && name != "corrupt")
        return;
    // A consuming Recv drains the oldest matching arrival from its
    // link's receive queue.
    auto it = inFlight_.find({FlowId(ev.a), std::uint32_t(ev.b)});
    if (it == inFlight_.end() || it->second.empty())
        return;
    const LinkId link = it->second.front().second;
    it->second.erase(it->second.begin());
    if (it->second.empty())
        inFlight_.erase(it);
    auto qd = queueDepth_.find(link);
    if (qd != queueDepth_.end() && qd->second > 0)
        --qd->second;
}

void
TimelineSampler::syncEvent(const TraceEvent &ev)
{
    if (std::string_view(ev.name) != "hac_adj")
        return;
    HacWindow &hw = hac_[windowOf(tickToCycle(ev.tick))];
    ++hw.adjustments;
    const std::uint64_t mag = std::uint64_t(std::llabs(ev.a));
    hw.sumAbsDelta += mag;
    hw.maxAbsDelta = std::max(hw.maxAbsDelta, mag);
    hw.sumAbsStep += std::uint64_t(std::llabs(ev.b));
    spanCycles_ = std::max(spanCycles_, tickToCycle(ev.tick) + 1);
}

void
TimelineSampler::finish()
{
    // Close out instructions still pending at end of stream, exactly
    // as the profiler does: their full modeled occupancy is charged.
    for (auto &[chip, pend] : pending_) {
        if (!pend.valid)
            continue;
        charge(chip, pend, pend.cycle + pend.durCycles);
    }
}

Json
TimelineSampler::report(const PhaseAnalysis *analysis) const
{
    Json root = Json::object();
    root.set("schema", kTimelineSchema);
    root.set("bench", bench_);
    if (hasSeed_)
        root.set("seed", seed_);
    root.set("window_cycles", windowCycles_);
    root.set("window_ps",
             std::int64_t(std::llround(double(windowCycles_) *
                                       kCorePeriodPs)));
    root.set("windows", numWindows());
    root.set("span_cycles", spanCycles_);
    root.set("events", events_);

    const double windowPs = double(windowCycles_) * kCorePeriodPs;

    {
        Json chips = Json::array();
        for (const auto &[id, windows] : chips_) {
            Json c = Json::object();
            c.set("id", id);
            Json ws = Json::array();
            for (const auto &[w, cw] : windows) {
                Json jw = Json::object();
                jw.set("w", w);
                Json busy = Json::object();
                for (unsigned u = 0; u < kNumFuncUnits; ++u)
                    busy.set(funcUnitName(FuncUnit(u)), cw.busy[u]);
                jw.set("busy", std::move(busy));
                jw.set("stall", cw.stall);
                jw.set("idle", cw.idle);
                jw.set("instrs", cw.instrs);
                ws.push(std::move(jw));
            }
            c.set("windows", std::move(ws));
            chips.push(std::move(c));
        }
        root.set("chips", std::move(chips));
    }

    {
        Json links = Json::array();
        for (const auto &[id, windows] : links_) {
            std::uint64_t flits = 0;
            for (const auto &[w, lw] : windows)
                flits += lw.flits;
            Json l = Json::object();
            l.set("id", id);
            l.set("flits", flits);
            Json ws = Json::array();
            for (const auto &[w, lw] : windows) {
                Json jw = Json::object();
                jw.set("w", w);
                jw.set("flits", lw.flits);
                jw.set("busy_ps", lw.busyPs);
                jw.set("util", windowPs > 0 ? double(lw.busyPs) / windowPs
                                            : 0.0);
                jw.set("queue_hwm", lw.queueHwm);
                jw.set("mbes", lw.mbes);
                ws.push(std::move(jw));
            }
            l.set("windows", std::move(ws));
            links.push(std::move(l));
        }
        root.set("links", std::move(links));
    }

    {
        Json hac = Json::array();
        for (const auto &[w, hw] : hac_) {
            Json jw = Json::object();
            jw.set("w", w);
            jw.set("adjustments", hw.adjustments);
            jw.set("sum_abs_delta", hw.sumAbsDelta);
            jw.set("max_abs_delta", hw.maxAbsDelta);
            jw.set("sum_abs_step", hw.sumAbsStep);
            hac.push(std::move(jw));
        }
        root.set("hac", std::move(hac));
    }

    {
        Json markers = Json::array();
        for (const TimelineMarker &m : markers_) {
            Json jm = Json::object();
            jm.set("tick", m.tick);
            jm.set("dur", m.dur);
            jm.set("cat", m.cat);
            jm.set("name", m.name);
            jm.set("actor", m.actor);
            markers.push(std::move(jm));
        }
        root.set("markers", std::move(markers));
    }

    if (analysis) {
        root.set("labels", windowLabelsJson(*analysis));
        root.set("phases", phasesJson(*analysis));
    }
    return root;
}

} // namespace tsm
