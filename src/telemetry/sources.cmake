tsm_module(telemetry
    contention.cc
    timeline.cc
    phase.cc
    bench_diff.cc
    render.cc
    progress.cc
)
