tsm_module(telemetry
    timeline.cc
    phase.cc
    bench_diff.cc
    render.cc
    progress.cc
)
