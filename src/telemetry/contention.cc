#include "telemetry/contention.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/format.hh"
#include "common/log.hh"
#include "telemetry/render.hh"

namespace tsm {

ContentionGrid::ContentionGrid(Tick window_ps) : windowPs_(window_ps)
{
    TSM_ASSERT(window_ps > 0, "zero-width contention window");
}

void
ContentionGrid::add(LinkId link, Tick from, Tick to)
{
    if (to <= from)
        return;
    auto &row = cells_[link];
    for (Tick at = from; at < to;) {
        const std::uint64_t w = at / windowPs_;
        const Tick edge = (w + 1) * windowPs_;
        const Tick stop = std::min(to, edge);
        row[w] += stop - at;
        at = stop;
    }
}

Tick
ContentionGrid::linkTotal(LinkId link) const
{
    auto it = cells_.find(link);
    if (it == cells_.end())
        return 0;
    Tick total = 0;
    for (const auto &[w, ps] : it->second)
        total += ps;
    return total;
}

Json
ContentionGrid::toJson() const
{
    std::uint64_t last = 0;
    for (const auto &[link, row] : cells_)
        if (!row.empty())
            last = std::max(last, row.rbegin()->first + 1);

    Json links = Json::array();
    for (const auto &[link, row] : cells_) {
        if (row.empty())
            continue;
        const std::uint64_t first = row.begin()->first;
        Json cells = Json::array();
        for (std::uint64_t w = first; w <= row.rbegin()->first; ++w) {
            auto it = row.find(w);
            cells.push(it == row.end() ? Tick(0) : it->second);
        }
        Json entry = Json::object();
        entry.set("id", std::uint64_t(link));
        entry.set("first", first);
        entry.set("cells", std::move(cells));
        links.push(std::move(entry));
    }

    Json out = Json::object();
    out.set("window_ps", std::uint64_t(windowPs_));
    out.set("windows", last);
    out.set("links", std::move(links));
    return out;
}

std::string
renderContentionHeatmap(const Json &blame, unsigned cols,
                        unsigned max_links)
{
    const Json &win = blame["windows"];
    const std::uint64_t windows =
        win.isNull() ? 0 : std::uint64_t(win["windows"].integer());
    const std::string bench =
        blame["bench"].isNull() ? "?" : blame["bench"].str();
    std::string out = format("== tsm contention: {} ==\n", bench);
    if (windows == 0) {
        out += "no blamed contention recorded\n";
        return out;
    }
    const Tick windowPs = Tick(win["window_ps"].integer());
    const unsigned ncols =
        unsigned(std::min<std::uint64_t>(windows, std::max(1u, cols)));
    out += format("{} windows x {} ps of blamed wait per link\n", windows,
                  std::uint64_t(windowPs));

    struct Row
    {
        std::string label;
        Tick total = 0;
        std::vector<Tick> cells;
    };
    std::vector<Row> rows;
    for (const Json &link : win["links"].items()) {
        Row row;
        row.label = format("link {}", link["id"].integer());
        row.cells.assign(ncols, 0);
        const std::uint64_t first =
            std::uint64_t(link["first"].integer());
        const auto &cells = link["cells"].items();
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Tick ps = Tick(cells[i].integer());
            const unsigned c = unsigned((first + i) * ncols / windows);
            row.cells[c] = std::max(row.cells[c], ps);
            row.total += ps;
        }
        rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.total > b.total;
                     });
    const std::size_t shown =
        std::min<std::size_t>(rows.size(), max_links);
    out += format("congestion heatmap ({} of {} links shown, shade = "
                  "blamed wait / window):\n",
                  std::uint64_t(shown), std::uint64_t(rows.size()));
    std::size_t width = 0;
    for (std::size_t r = 0; r < shown; ++r)
        width = std::max(width, rows[r].label.size());
    for (std::size_t r = 0; r < shown; ++r) {
        const Row &row = rows[r];
        out += row.label;
        out += std::string(width - row.label.size(), ' ');
        out += " |";
        for (unsigned c = 0; c < ncols; ++c)
            out += shadeChar(double(row.cells[c]) / double(windowPs));
        out += format("| {} ps\n", std::uint64_t(row.total));
    }
    return out;
}

} // namespace tsm
