/**
 * @file
 * Bottleneck-phase analysis over a sampled timeline.
 *
 * Given the windowed accounts of a TimelineSampler, label every
 * window with its dominant regime — compute-, network- or sync-bound,
 * or idle — naming the hottest functional unit and link, and merge
 * consecutive same-regime windows into *phases* with per-phase
 * summaries. This is the time-domain complement of the whole-run
 * attribution in prof/profiler.hh: "the run was 40% network-bound"
 * becomes "windows 12..31 were network-bound on link 5".
 *
 * The labeling rule is deterministic and intentionally simple:
 *
 *   busyFrac  = FU-busy cycles / charged cycles in the window
 *   stallFrac = stall cycles   / charged cycles in the window
 *   netUtil   = max over links of serialization busy / window width
 *
 *   no activity at all              -> Idle
 *   stallFrac >= busyFrac, netUtil  -> Sync     (deskew / poll waits)
 *   netUtil   >= busyFrac           -> Network
 *   otherwise                       -> Compute
 *
 * Ties break toward the later rule's predecessor (Sync over Network
 * over Compute), matching the paper's view that synchronization and
 * the network are the scarce resources worth surfacing first.
 */

#ifndef TSM_TELEMETRY_PHASE_HH
#define TSM_TELEMETRY_PHASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "telemetry/timeline.hh"

namespace tsm {

/** Dominant regime of one window or phase. */
enum class Regime : std::uint8_t
{
    Idle,
    Compute,
    Network,
    Sync,
};

inline constexpr unsigned kNumRegimes = 4;

/** Lowercase regime name ("compute", "network", ...). */
const char *regimeName(Regime r);

/** One-character regime tag for the tsm_top phase ribbon. */
char regimeChar(Regime r);

/** Per-window regime label. */
struct WindowLabel
{
    std::uint64_t window = 0;
    Regime regime = Regime::Idle;

    double busyFrac = 0.0;
    double stallFrac = 0.0;
    double netUtil = 0.0;

    /** Hottest link (most serialization busy), -1 when none. */
    std::int64_t hotLink = -1;

    /** Hottest functional unit (most busy cycles), -1 when none. */
    std::int64_t hotFu = -1;
};

/** A run of consecutive same-regime windows. */
struct PhaseSummary
{
    std::uint64_t firstWindow = 0;
    std::uint64_t lastWindow = 0;
    Regime regime = Regime::Idle;

    /** Means over the phase's windows. */
    double busyFrac = 0.0;
    double stallFrac = 0.0;
    double netUtil = 0.0;

    /** Hottest link/FU aggregated over the whole phase (-1 = none). */
    std::int64_t hotLink = -1;
    std::int64_t hotFu = -1;

    /** Data flits carried during the phase. */
    std::uint64_t flits = 0;

    std::uint64_t windows() const { return lastWindow - firstWindow + 1; }
};

/** The full analysis: one label per window, phases in window order. */
struct PhaseAnalysis
{
    std::vector<WindowLabel> labels;
    std::vector<PhaseSummary> phases;
};

/** Label every window of `sampler` and segment the run into phases. */
PhaseAnalysis analyzePhases(const TimelineSampler &sampler);

/** Serialize the per-window labels as a JSON array. */
Json windowLabelsJson(const PhaseAnalysis &analysis);

/**
 * Serialize the phase segments as a JSON array — the "phases" section
 * embedded both in `tsm-timeline-v1` documents and (via
 * ProfileCollector::setPhases) in `tsm-profile-v1` reports.
 */
Json phasesJson(const PhaseAnalysis &analysis);

/** Render the phase table as human-readable text. */
std::string renderPhaseTable(const Json &phases);

} // namespace tsm

#endif // TSM_TELEMETRY_PHASE_HH
