#include "telemetry/render.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "common/format.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "telemetry/phase.hh"

namespace tsm {

char
shadeChar(double util)
{
    if (util <= 0.0)
        return kShadeRamp[0];
    const std::size_t steps = std::strlen(kShadeRamp);
    std::size_t idx = std::size_t(util * double(steps));
    idx = std::min(idx, steps - 1);
    return kShadeRamp[idx];
}

namespace {

/** Buckets window indices into at most `cols` equal columns. */
struct ColumnMap
{
    std::uint64_t windows;
    unsigned cols;

    unsigned
    columnOf(std::uint64_t w) const
    {
        return unsigned(w * cols / windows);
    }
};

/** One heatmap row: per-column max utilization. */
struct Row
{
    std::string label;
    double total = 0.0; ///< sort key (descending)
    std::vector<double> cells;
};

std::string
heatmap(const std::string &title, std::vector<Row> rows, unsigned maxRows,
        unsigned cols)
{
    if (rows.empty())
        return "";
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.total > b.total;
                     });
    const std::size_t shown = std::min<std::size_t>(rows.size(), maxRows);
    std::string out =
        format("{} ({} of {} shown):\n", title, std::uint64_t(shown),
               std::uint64_t(rows.size()));
    std::size_t width = 0;
    for (std::size_t r = 0; r < shown; ++r)
        width = std::max(width, rows[r].label.size());
    for (std::size_t r = 0; r < shown; ++r) {
        const Row &row = rows[r];
        out += row.label;
        out += std::string(width - row.label.size(), ' ');
        out += " |";
        for (unsigned c = 0; c < cols; ++c)
            out += shadeChar(c < row.cells.size() ? row.cells[c] : 0.0);
        out += "|\n";
    }
    return out;
}

} // namespace

std::string
renderTimelineTop(const Json &timeline, const TopOptions &opts)
{
    const std::string bench =
        timeline["bench"].isNull() ? "?" : timeline["bench"].str();
    const std::uint64_t windows =
        std::uint64_t(timeline["windows"].integer());
    std::string out = format("== tsm timeline: {} ==\n", bench);
    if (timeline.has("seed"))
        out += format("seed: {}\n", timeline["seed"].integer());
    out += format("{} windows x {} cycles ({} cycles spanned, {} "
                  "events)\n",
                  windows, timeline["window_cycles"].integer(),
                  timeline["span_cycles"].integer(),
                  timeline["events"].integer());
    if (windows == 0) {
        out += "empty timeline: no windowed activity recorded\n";
        return out;
    }

    const ColumnMap cm{windows,
                       unsigned(std::min<std::uint64_t>(
                           windows, std::max(1u, opts.cols)))};
    const double windowPs = timeline["window_ps"].number();

    // Column scale line: which window each edge column covers.
    out += format("columns: {} windows/col, window 0 at left, window {} "
                  "at right\n\n",
                  (windows + cm.cols - 1) / cm.cols, windows - 1);

    {
        std::vector<Row> rows;
        for (const Json &link : timeline["links"].items()) {
            Row row;
            row.label = format("link {}", link["id"].integer());
            row.cells.assign(cm.cols, 0.0);
            for (const Json &w : link["windows"].items()) {
                const unsigned c =
                    cm.columnOf(std::uint64_t(w["w"].integer()));
                row.cells[c] =
                    std::max(row.cells[c], w["util"].number());
                row.total += w["busy_ps"].number();
            }
            rows.push_back(std::move(row));
        }
        out += heatmap("link utilization", std::move(rows), opts.maxLinks,
                       cm.cols);
    }

    {
        std::vector<Row> rows;
        for (const Json &chip : timeline["chips"].items()) {
            Row row;
            row.label = format("tsp {}", chip["id"].integer());
            row.cells.assign(cm.cols, 0.0);
            const double windowCycles =
                double(timeline["window_cycles"].integer());
            for (const Json &w : chip["windows"].items()) {
                double busy = 0.0;
                for (const auto &[fu, cycles] : w["busy"].members())
                    busy += cycles.number();
                const unsigned c =
                    cm.columnOf(std::uint64_t(w["w"].integer()));
                row.cells[c] = std::max(
                    row.cells[c],
                    windowCycles > 0 ? busy / windowCycles : 0.0);
                row.total += busy;
            }
            rows.push_back(std::move(row));
        }
        if (!rows.empty())
            out += "\n" + heatmap("chip FU occupancy", std::move(rows),
                                  opts.maxChips, cm.cols);
    }

    const Json &labels = timeline["labels"];
    if (!labels.isNull() && labels.size() > 0) {
        // Phase ribbon: each column shows the regime that covers the
        // most of its windows (ties break toward the regime seen
        // first, i.e. the earlier window).
        std::vector<std::map<std::string, unsigned>> votes(cm.cols);
        std::vector<std::string> first(cm.cols);
        for (const Json &l : labels.items()) {
            const unsigned c = cm.columnOf(std::uint64_t(l["w"].integer()));
            const std::string &regime = l["regime"].str();
            ++votes[c][regime];
            if (first[c].empty())
                first[c] = regime;
        }
        out += "\nphase ribbon (C compute, N network, S sync, . idle):\n";
        const std::size_t pad = std::strlen("link ") + 1;
        out += std::string(pad, ' ') + "|";
        for (unsigned c = 0; c < cm.cols; ++c) {
            std::string best = first[c];
            unsigned bestVotes = best.empty() ? 0 : votes[c][best];
            for (const auto &[regime, n] : votes[c])
                if (n > bestVotes) {
                    best = regime;
                    bestVotes = n;
                }
            char ch = '.';
            for (unsigned r = 0; r < kNumRegimes; ++r)
                if (best == regimeName(Regime(r)))
                    ch = regimeChar(Regime(r));
            out += ch;
        }
        out += "|\n";
    }

    const Json &phases = timeline["phases"];
    if (!phases.isNull() && phases.size() > 0) {
        out += "\n" + renderPhaseTable(phases);
        out += format("one window = {} us of simulated time\n",
                      Table::num(windowPs / double(kPsPerUs), 3));
    }
    return out;
}

} // namespace tsm
