/**
 * @file
 * Cross-run bench comparison: the regression-gate core behind
 * tools/tsm_bench_diff.
 *
 * Compares two `tsm-profile-v1` reports (or two `tsm-timeline-v1`,
 * `tsm-hostprof-v1`, `tsm-blame-v1`, `tsm-whatif-v1` or
 * `tsm-parallel-v1` documents) metric by metric against a relative
 * tolerance. Each
 * metric carries a *direction* — for `cycles` bigger is worse, for
 * `gbytes_per_sec` smaller is worse, for `flits` any drift beyond
 * tolerance means the run measured different work — and a comparison
 * either passes, regresses, improves, or is informational. One
 * regressed metric makes the whole diff a regression (tsm_bench_diff
 * exits 1), which is what lets CI pin the checked-in BENCH_*.json
 * baselines: the bench trajectory becomes a gate instead of a log.
 *
 * What-if documents diff their ranked lever tables by identity key
 * ("link_bandwidth:3:x2"), not by position: the baseline's top levers
 * must still exist in the new run with the same rank and a projected
 * delta within tolerance, so a silent reshuffle of the optimization
 * guidance gates even when the base makespan is unchanged.
 */

#ifndef TSM_TELEMETRY_BENCH_DIFF_HH
#define TSM_TELEMETRY_BENCH_DIFF_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace tsm {

/** What counts as a regression for one metric. */
enum class MetricDirection : std::uint8_t
{
    LowerIsBetter,  ///< regression when the new value grows past tol
    HigherIsBetter, ///< regression when the new value shrinks past tol
    Stable,         ///< regression when it moves either way past tol
    Info,           ///< reported, never gates
};

/** Outcome of one metric comparison. */
enum class MetricVerdict : std::uint8_t
{
    Ok,        ///< within tolerance
    Improved,  ///< beyond tolerance in the good direction
    Regressed, ///< beyond tolerance in the bad direction
    Info,      ///< informational metric, no verdict
};

const char *metricVerdictName(MetricVerdict v);

/** One compared metric. */
struct MetricDelta
{
    std::string name;
    double base = 0.0;
    double next = 0.0;

    /** Relative change (next-base)/|base|; +-1 when base is zero. */
    double rel = 0.0;

    MetricDirection direction = MetricDirection::Info;
    MetricVerdict verdict = MetricVerdict::Info;
};

/** The full comparison. */
struct DiffResult
{
    std::vector<MetricDelta> metrics;
    double tolerance = 0.0;
    bool regressed = false;

    /** Count of metrics with the given verdict. */
    std::size_t count(MetricVerdict v) const;
};

/**
 * Compare two documents of the same schema ("tsm-profile-v1" or
 * "tsm-timeline-v1") with relative tolerance `tol`. Metrics missing
 * from either document are skipped; a schema mismatch yields an empty
 * result with `regressed` set.
 */
DiffResult diffReports(const Json &base, const Json &next, double tol);

/** Human-readable table + verdict footer. */
std::string renderDiff(const DiffResult &diff);

} // namespace tsm

#endif // TSM_TELEMETRY_BENCH_DIFF_HH
