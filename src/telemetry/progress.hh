/**
 * @file
 * Simulated-time progress heartbeat for long-running benches.
 *
 * A multi-minute simulation run with no output is indistinguishable
 * from a hung one. `ProgressSink` subscribes to the full trace stream
 * (the per-dispatch Sim firehose included, so it ticks even when no
 * model-level events fire) and prints one status line to stderr each
 * time simulated time crosses another N-megacycle boundary:
 *
 *     progress: 12 Mcycle, 345678 events, 3 active transfers
 *
 * "Active transfers" counts causal spans opened but not yet closed
 * (trace/span.hh) — the work still in flight on the network. Enabled
 * with `--progress=N` on every TraceSession-instrumented harness;
 * fractional N (e.g. `--progress=0.25`) suits short runs.
 */

#ifndef TSM_TELEMETRY_PROGRESS_HH
#define TSM_TELEMETRY_PROGRESS_HH

#include <cstdio>

#include "common/units.hh"
#include "trace/trace.hh"

namespace tsm {

/** Emits a heartbeat line as simulated time advances. */
class ProgressSink : public TraceSink
{
  public:
    /**
     * @param megacycles Heartbeat interval in units of 1e6 core
     *        cycles; values <= 0 disable output.
     * @param out Stream the heartbeat goes to (stderr by default, so
     *        it never contaminates parseable stdout output).
     */
    explicit ProgressSink(double megacycles, std::FILE *out = stderr);

    /** Everything, Sim dispatches included. */
    unsigned categoryMask() const override { return kTraceAllCats; }

    void event(const TraceEvent &ev) override;

    /** Print the final line (total events / final cycle). */
    void finish() override;

    std::uint64_t eventsSeen() const { return events_; }
    std::uint64_t linesPrinted() const { return lines_; }
    std::uint64_t activeTransfers() const { return activeTransfers_; }

  private:
    void line(Tick tick);

    Tick intervalPs_ = 0;
    std::FILE *out_;
    Tick nextBeat_ = 0;
    Tick lastTick_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t lines_ = 0;
    std::uint64_t activeTransfers_ = 0;
    bool finished_ = false;
};

} // namespace tsm

#endif // TSM_TELEMETRY_PROGRESS_HH
