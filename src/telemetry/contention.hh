/**
 * @file
 * Windowed per-link contention intensity.
 *
 * The blame layer (prof/blame.hh) attributes every waited picosecond
 * to the flow that occupied the contended resource; this grid answers
 * *when* the contention happened. Each blamed wait interval on a link
 * is spread exactly over fixed-width picosecond windows (an interval
 * crossing a boundary contributes the clipped overlap to each side),
 * so the sum of a link's cells equals its total blamed wait. The grid
 * serializes deterministically inside the `tsm-blame-v1` document and
 * is what `tsm_top` renders as the congestion heatmap.
 */

#ifndef TSM_TELEMETRY_CONTENTION_HH
#define TSM_TELEMETRY_CONTENTION_HH

#include <cstdint>
#include <map>

#include "common/json.hh"
#include "common/units.hh"
#include "net/topology.hh"

namespace tsm {

/** Default contention window width in picoseconds (~225 cycles). */
inline constexpr Tick kDefaultContentionWindowPs = 250000;

/** Per-link, per-window accumulation of blamed wait time. */
class ContentionGrid
{
  public:
    explicit ContentionGrid(Tick window_ps = kDefaultContentionWindowPs);

    /** Spread the wait interval [from, to) on `link` over windows. */
    void add(LinkId link, Tick from, Tick to);

    Tick windowPs() const { return windowPs_; }

    /** Total wait recorded for one link (sum of its cells). */
    Tick linkTotal(LinkId link) const;

    /**
     * Serialize as {"window_ps", "windows", "links": [{"id", "first",
     * "cells"}]}. `first` is the index of a link's first non-empty
     * window; `cells` runs contiguously from there to its last.
     * Deterministic: maps iterate in key order.
     */
    Json toJson() const;

  private:
    Tick windowPs_;

    /** link -> window index -> blamed wait ps inside that window. */
    std::map<LinkId, std::map<std::uint64_t, Tick>> cells_;
};

/**
 * Render the congestion heatmap of a `tsm-blame-v1` document's
 * "windows" section: links x time, shaded by blamed wait per window
 * (the telemetry/render.hh ramp), downsampled to `cols` columns with
 * per-column maxima, busiest links first.
 */
std::string renderContentionHeatmap(const Json &blame, unsigned cols = 64,
                                    unsigned max_links = 12);

} // namespace tsm

#endif // TSM_TELEMETRY_CONTENTION_HH
