#include "telemetry/bench_diff.hh"

#include <cmath>

#include "common/format.hh"
#include "common/table.hh"

namespace tsm {

const char *
metricVerdictName(MetricVerdict v)
{
    switch (v) {
      case MetricVerdict::Ok:
        return "ok";
      case MetricVerdict::Improved:
        return "improved";
      case MetricVerdict::Regressed:
        return "REGRESSED";
      case MetricVerdict::Info:
        return "info";
    }
    return "?";
}

std::size_t
DiffResult::count(MetricVerdict v) const
{
    std::size_t n = 0;
    for (const MetricDelta &m : metrics)
        if (m.verdict == v)
            ++n;
    return n;
}

namespace {

/** Walk a dotted path ("throughput.flits") into a document. */
const Json &
lookup(const Json &doc, const std::string &path)
{
    const Json *at = &doc;
    std::size_t start = 0;
    while (start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        const std::string key =
            path.substr(start, dot == std::string::npos ? std::string::npos
                                                        : dot - start);
        at = &(*at)[key];
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return *at;
}

void
compareMetric(DiffResult &out, const std::string &name, double base,
              double next, MetricDirection dir, double tol)
{
    MetricDelta m;
    m.name = name;
    m.base = base;
    m.next = next;
    m.direction = dir;
    if (base != 0.0) {
        m.rel = (next - base) / std::fabs(base);
    } else {
        m.rel = next == 0.0 ? 0.0 : (next > 0 ? 1.0 : -1.0);
    }

    if (dir == MetricDirection::Info) {
        m.verdict = MetricVerdict::Info;
    } else {
        const bool worse =
            (dir == MetricDirection::LowerIsBetter && m.rel > tol) ||
            (dir == MetricDirection::HigherIsBetter && m.rel < -tol) ||
            (dir == MetricDirection::Stable && std::fabs(m.rel) > tol);
        const bool better =
            (dir == MetricDirection::LowerIsBetter && m.rel < -tol) ||
            (dir == MetricDirection::HigherIsBetter && m.rel > tol);
        m.verdict = worse     ? MetricVerdict::Regressed
                    : better  ? MetricVerdict::Improved
                              : MetricVerdict::Ok;
    }
    if (m.verdict == MetricVerdict::Regressed)
        out.regressed = true;
    out.metrics.push_back(std::move(m));
}

/** Compare `path` in both documents if present in both. */
void
comparePath(DiffResult &out, const Json &base, const Json &next,
            const std::string &path, MetricDirection dir, double tol)
{
    const Json &b = lookup(base, path);
    const Json &n = lookup(next, path);
    if (!b.isNumber() || !n.isNumber())
        return;
    compareMetric(out, path, b.number(), n.number(), dir, tol);
}

double
meanOver(const Json &array, const char *key)
{
    if (array.isNull() || array.size() == 0)
        return 0.0;
    double sum = 0.0;
    for (const Json &item : array.items())
        sum += item[key].number();
    return sum / double(array.size());
}

void
diffProfile(DiffResult &out, const Json &base, const Json &next,
            double tol)
{
    comparePath(out, base, next, "cycles",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "sim.events", MetricDirection::Stable,
                tol);
    comparePath(out, base, next, "throughput.flits",
                MetricDirection::Stable, tol);
    comparePath(out, base, next, "throughput.gbytes_per_sec",
                MetricDirection::HigherIsBetter, tol);
    comparePath(out, base, next, "queue_delay_ps.p50",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "queue_delay_ps.p99",
                MetricDirection::LowerIsBetter, tol);
    if (!base["chips"].isNull() && !next["chips"].isNull()) {
        compareMetric(out, "chips.mean_busy_frac",
                      meanOver(base["chips"], "busy_frac"),
                      meanOver(next["chips"], "busy_frac"),
                      MetricDirection::HigherIsBetter, tol);
        compareMetric(out, "chips.mean_stall_frac",
                      meanOver(base["chips"], "stall_frac"),
                      meanOver(next["chips"], "stall_frac"),
                      MetricDirection::LowerIsBetter, tol);
    }
    comparePath(out, base, next, "transfers_summary.closed",
                MetricDirection::Stable, tol);
    comparePath(out, base, next, "ssn.predicted_completion_cycles",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "ssn.gap_cycles", MetricDirection::Info,
                tol);
    comparePath(out, base, next, "hac.adjustments", MetricDirection::Info,
                tol);
}

void
diffHostprof(DiffResult &out, const Json &base, const Json &next,
             double tol)
{
    // The deterministic fields gate hard: two runs of the same binary
    // on the same scenario must dispatch the same events through the
    // same queue shape, whatever the machine.
    comparePath(out, base, next, "events", MetricDirection::Stable, tol);
    comparePath(out, base, next, "sim_cycles", MetricDirection::Stable,
                tol);
    comparePath(out, base, next, "queue.inserts", MetricDirection::Stable,
                tol);
    comparePath(out, base, next, "queue.max_depth",
                MetricDirection::Stable, tol);
    // The wall-clock-derived rates are the performance gate; they are
    // directional so a faster simulator never "regresses".
    comparePath(out, base, next, "sim_rate.events_per_sec",
                MetricDirection::HigherIsBetter, tol);
    comparePath(out, base, next, "sim_rate.cycles_per_sec",
                MetricDirection::HigherIsBetter, tol);
    comparePath(out, base, next, "sim_rate.slowdown",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "allocs.per_event",
                MetricDirection::LowerIsBetter, tol);
    // Raw wall times are machine-dependent context, never a verdict.
    comparePath(out, base, next, "wall_ns", MetricDirection::Info, tol);
    comparePath(out, base, next, "sections.queue_ns",
                MetricDirection::Info, tol);
    comparePath(out, base, next, "sections.dispatch_ns",
                MetricDirection::Info, tol);
}

void
diffTimeline(DiffResult &out, const Json &base, const Json &next,
             double tol)
{
    comparePath(out, base, next, "span_cycles",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "windows",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "events", MetricDirection::Stable, tol);
    auto totalFlits = [](const Json &doc) {
        double flits = 0.0;
        for (const Json &l : doc["links"].items())
            flits += l["flits"].number();
        return flits;
    };
    if (!base["links"].isNull() && !next["links"].isNull())
        compareMetric(out, "links.total_flits", totalFlits(base),
                      totalFlits(next), MetricDirection::Stable, tol);
    if (!base["phases"].isNull() && !next["phases"].isNull())
        compareMetric(out, "phases", double(base["phases"].size()),
                      double(next["phases"].size()), MetricDirection::Info,
                      tol);
}

void
diffBlame(DiffResult &out, const Json &base, const Json &next,
          double tol)
{
    // Recv count is structural: the same scenario must hand the same
    // transfers to the blame sink, whatever the waits were.
    comparePath(out, base, next, "totals.recvs", MetricDirection::Stable,
                tol);
    comparePath(out, base, next, "totals.wait_ps",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "totals.blamed_ps",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "totals.margin_ps",
                MetricDirection::Info, tol);
    comparePath(out, base, next, "schedule.total_delay_cycles",
                MetricDirection::LowerIsBetter, tol);
    comparePath(out, base, next, "schedule.issue_delay_cycles",
                MetricDirection::LowerIsBetter, tol);
    // The worst flow-on-flow interference edge; both documents sort
    // flow_pairs descending, so index 0 is each run's heaviest blame.
    if (base["flow_pairs"].kind() == Json::Kind::Array &&
        next["flow_pairs"].kind() == Json::Kind::Array &&
        base["flow_pairs"].size() > 0 && next["flow_pairs"].size() > 0) {
        compareMetric(out, "flow_pairs.top_ps",
                      base["flow_pairs"].at(0)["ps"].number(),
                      next["flow_pairs"].at(0)["ps"].number(),
                      MetricDirection::LowerIsBetter, tol);
    }
}

void
diffWhatif(DiffResult &out, const Json &base, const Json &next,
           double tol)
{
    // The schedule-level baseline is deterministic per scenario, so a
    // shifted makespan means the scheduler itself changed behavior.
    comparePath(out, base, next, "base.makespan_cycles",
                MetricDirection::Stable, tol);
    comparePath(out, base, next, "base.static_completion_cycles",
                MetricDirection::Stable, tol);
    comparePath(out, base, next, "base.hops", MetricDirection::Stable,
                tol);
    comparePath(out, base, next, "levers_total",
                MetricDirection::Stable, tol);
    // Compare levers by identity key, not by rank: a lever's projected
    // delta drifting or a baseline lever vanishing outright are both
    // ranking regressions, but two levers legitimately swapping places
    // within tolerance is not.
    auto leverByKey = [](const Json &doc,
                         const std::string &key) -> const Json & {
        static const Json null;
        if (doc["levers"].kind() != Json::Kind::Array)
            return null;
        for (const Json &l : doc["levers"].items())
            if (l["key"].kind() == Json::Kind::String &&
                l["key"].str() == key)
                return l;
        return null;
    };
    double missing = 0.0;
    std::size_t compared = 0;
    if (base["levers"].kind() == Json::Kind::Array) {
        for (const Json &bl : base["levers"].items()) {
            if (compared >= 5)
                break;
            if (bl["key"].kind() != Json::Kind::String)
                continue;
            const std::string key = bl["key"].str();
            const Json &nl = leverByKey(next, key);
            if (nl.isNull()) {
                missing += 1.0;
                continue;
            }
            ++compared;
            compareMetric(out, "lever." + key + ".delta_cycles",
                          bl["delta_cycles"].number(),
                          nl["delta_cycles"].number(),
                          MetricDirection::Stable, tol);
            compareMetric(out, "lever." + key + ".rank",
                          bl["rank"].number(), nl["rank"].number(),
                          MetricDirection::Stable, tol);
        }
    }
    compareMetric(out, "levers.top5_missing_in_new", 0.0, missing,
                  MetricDirection::Stable, tol);
}

void
diffLanes(DiffResult &out, const Json &base, const Json &next,
          double tol)
{
    // The structural shape of the concurrency profile is deterministic
    // per scenario: same events, same lanes, same phase count. Drift
    // here means the run folded a different event stream.
    comparePath(out, base, next, "totals.events",
                MetricDirection::Stable, tol);
    comparePath(out, base, next, "lanes_total", MetricDirection::Stable,
                tol);
    comparePath(out, base, next, "phases.count",
                MetricDirection::Stable, tol);
    // The projected bounds are the payload: shrinking exploitable
    // parallelism is a regression against the parallel-engine plan,
    // growing it is an improvement. Match entries by worker count, not
    // by position.
    auto boundFor = [](const Json &doc,
                       std::int64_t workers) -> const Json & {
        static const Json null;
        if (doc["speedup"].kind() != Json::Kind::Array)
            return null;
        for (const Json &s : doc["speedup"].items())
            if (s["workers"].integer() == workers)
                return s["bound"];
        return null;
    };
    if (base["speedup"].kind() == Json::Kind::Array) {
        for (const Json &bs : base["speedup"].items()) {
            const std::int64_t workers = bs["workers"].integer();
            const Json &nb = boundFor(next, workers);
            if (!nb.isNumber())
                continue;
            compareMetric(out,
                          "speedup." + std::to_string(workers) +
                              ".bound",
                          bs["bound"].number(), nb.number(),
                          MetricDirection::HigherIsBetter, tol);
        }
    }
    comparePath(out, base, next, "speedup_inf",
                MetricDirection::HigherIsBetter, tol);
    // A longer critical path eats the bound from below even when the
    // per-worker table still clears the gate.
    comparePath(out, base, next, "critical_path.events",
                MetricDirection::LowerIsBetter, tol);
    // Cross-lane pressure is context: it explains a bound change but
    // never gates on its own.
    comparePath(out, base, next, "totals.cross_lane_events",
                MetricDirection::Info, tol);
    comparePath(out, base, next, "totals.same_phase_cross_lane",
                MetricDirection::Info, tol);
    comparePath(out, base, next, "lookahead_ps", MetricDirection::Info,
                tol);
}

} // namespace

DiffResult
diffReports(const Json &base, const Json &next, double tol)
{
    DiffResult out;
    out.tolerance = tol;
    const std::string baseSchema =
        base["schema"].isNull() ? "" : base["schema"].str();
    const std::string nextSchema =
        next["schema"].isNull() ? "" : next["schema"].str();
    if (baseSchema.empty() || baseSchema != nextSchema) {
        out.regressed = true;
        return out;
    }
    if (baseSchema == "tsm-timeline-v1")
        diffTimeline(out, base, next, tol);
    else if (baseSchema == "tsm-hostprof-v1")
        diffHostprof(out, base, next, tol);
    else if (baseSchema == "tsm-blame-v1")
        diffBlame(out, base, next, tol);
    else if (baseSchema == "tsm-whatif-v1")
        diffWhatif(out, base, next, tol);
    else if (baseSchema == "tsm-parallel-v1")
        diffLanes(out, base, next, tol);
    else
        diffProfile(out, base, next, tol);
    return out;
}

std::string
renderDiff(const DiffResult &diff)
{
    std::string out;
    Table t({"metric", "base", "new", "delta", "verdict"});
    for (const MetricDelta &m : diff.metrics) {
        t.addRow({m.name, Table::num(m.base, 2), Table::num(m.next, 2),
                  format("{}{}%", m.rel > 0 ? "+" : "",
                         Table::num(m.rel * 100.0, 2)),
                  metricVerdictName(m.verdict)});
    }
    out += t.ascii();
    const std::size_t regressions = diff.count(MetricVerdict::Regressed);
    if (diff.metrics.empty()) {
        out += "no comparable metrics (schema mismatch or empty "
               "documents)\n";
    } else if (regressions > 0) {
        out += format("REGRESSION: {} metric(s) beyond {}% tolerance\n",
                      std::uint64_t(regressions),
                      Table::num(diff.tolerance * 100.0, 1));
    } else {
        out += format("ok: {} metrics within {}% tolerance\n",
                      std::uint64_t(diff.metrics.size()),
                      Table::num(diff.tolerance * 100.0, 1));
    }
    return out;
}

} // namespace tsm
