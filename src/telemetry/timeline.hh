/**
 * @file
 * Time-resolved telemetry: the windowed timeline sampler.
 *
 * The profiler (prof/profiler.hh) answers "where did the cycles of the
 * whole run go"; the journal (trace/journal.hh) records every event.
 * Between the two sits the question the paper's figures actually ask —
 * *which part of the run* was network-bound, and on which links (Fig 2
 * bandwidth profile, Fig 8 contention timelines, Table 2 HAC
 * convergence). The `TimelineSampler` is a TraceSink that folds the
 * trace stream into fixed-width cycle windows:
 *
 *  - per link: flits carried, serialization-busy time, FEC MBEs, and
 *    the receive-queue depth high-water mark within the window;
 *  - per chip, per functional unit: issue-slot busy cycles plus stall
 *    and idle cycles, using charging rules identical to ProfilerSink
 *    so that per-window accounts sum *exactly* to the whole-run
 *    accounts (tested);
 *  - HAC alignment activity: adjustment count and drift/correction
 *    magnitudes per window;
 *  - phase markers: runtime bring-up events and the SSN schedule's
 *    flow/makespan replay markers, for labeling collective phases.
 *
 * The sampler serializes as a stable, byte-deterministic
 * `tsm-timeline-v1` JSON document (same-seed runs emit identical
 * bytes), optionally annotated with the bottleneck-phase analysis of
 * telemetry/phase.hh. `--timeline=FILE` on the instrumented harnesses
 * (trace/session.hh) writes it; tools/tsm_top renders it offline.
 *
 * Window boundaries: a window covers cycles [w*W, (w+1)*W); an event
 * exactly on a boundary cycle belongs to the *opening* window. Ticks
 * are mapped to cycles by truncation at the nominal core period.
 */

#ifndef TSM_TELEMETRY_TIMELINE_HH
#define TSM_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/isa.hh"
#include "common/json.hh"
#include "common/units.hh"
#include "net/flit.hh"
#include "net/topology.hh"
#include "trace/trace.hh"

namespace tsm {

struct PhaseAnalysis;

/** Schema tag stamped into every timeline document. */
inline constexpr const char *kTimelineSchema = "tsm-timeline-v1";

/** Default window width in core cycles. */
inline constexpr Cycle kDefaultWindowCycles = 1024;

/** One chip's account within one window. */
struct ChipWindow
{
    Cycle busy[kNumFuncUnits] = {};
    Cycle stall = 0;
    Cycle idle = 0;
    std::uint64_t instrs = 0;

    Cycle busyTotal() const
    {
        Cycle total = 0;
        for (unsigned u = 0; u < kNumFuncUnits; ++u)
            total += busy[u];
        return total;
    }
};

/** One link's account within one window. */
struct LinkWindow
{
    std::uint64_t flits = 0;
    std::uint64_t mbes = 0;

    /** Transmitter serialization time attributed to this window. */
    Tick busyPs = 0;

    /** Receive-queue depth high-water mark observed in this window. */
    unsigned queueHwm = 0;
};

/** HAC alignment activity within one window. */
struct HacWindow
{
    std::uint64_t adjustments = 0;
    std::uint64_t sumAbsDelta = 0;
    std::uint64_t maxAbsDelta = 0;
    std::uint64_t sumAbsStep = 0;
};

/** A runtime bring-up or schedule-replay marker on the timeline. */
struct TimelineMarker
{
    Tick tick = 0;
    Tick dur = 0;
    std::string cat;  ///< "runtime" or "ssn"
    std::string name; ///< "synchronize", "flow", "makespan", ...
    std::uint32_t actor = 0;
};

/** Folds the trace stream into fixed-width cycle windows. */
class TimelineSampler : public TraceSink
{
  public:
    explicit TimelineSampler(Cycle windowCycles = kDefaultWindowCycles);

    /** Everything except the per-dispatch Sim firehose. */
    unsigned categoryMask() const override { return kTraceDefaultCats; }

    void event(const TraceEvent &ev) override;

    /** Close out still-pending instruction occupancies. */
    void finish() override;

    /// @name Run identity stamped into the document
    /// @{
    void setBench(std::string name) { bench_ = std::move(name); }
    void setSeed(std::uint64_t seed);
    /// @}

    /// @name Sampled windows (sparse, keyed by window index ascending)
    /// @{
    Cycle windowCycles() const { return windowCycles_; }

    /** Number of windows covering the run: last touched index + 1. */
    std::uint64_t numWindows() const;

    /** Latest cycle any windowed account touches. */
    Cycle spanCycles() const { return spanCycles_; }

    std::uint64_t events() const { return events_; }

    const std::map<TspId, std::map<std::uint64_t, ChipWindow>> &
    chips() const
    {
        return chips_;
    }

    const std::map<LinkId, std::map<std::uint64_t, LinkWindow>> &
    links() const
    {
        return links_;
    }

    const std::map<std::uint64_t, HacWindow> &hac() const { return hac_; }

    const std::vector<TimelineMarker> &markers() const { return markers_; }
    /// @}

    /** Cycle a global tick lands on (truncating, nominal period). */
    Cycle tickToCycle(Tick tick) const;

    /** Window a cycle belongs to. */
    std::uint64_t windowOf(Cycle cycle) const
    {
        return cycle / windowCycles_;
    }

    /**
     * Build the `tsm-timeline-v1` document; byte-deterministic for a
     * given event stream. When `analysis` is non-null its window
     * labels and phase segments are embedded ("labels" / "phases").
     */
    Json report(const PhaseAnalysis *analysis = nullptr) const;

  private:
    struct Pending
    {
        bool valid = false;
        Cycle cycle = 0;
        Cycle durCycles = 0;
        FuncUnit unit = FuncUnit::ICU;
        OpTimeClass cls = OpTimeClass::Idle;
    };

    void chipEvent(const TraceEvent &ev);
    void netEvent(const TraceEvent &ev);
    void ssnEvent(const TraceEvent &ev);
    void syncEvent(const TraceEvent &ev);

    /**
     * Charge the pending instruction across [pend.cycle, until) with
     * ProfilerSink's exact rules — min(gap, dur) to the op's class,
     * the remainder to idle — but split per window boundary.
     */
    void charge(TspId chip, Pending &pend, Cycle until);

    /** Add `kind`-class cycles over [from, to), split per window. */
    void chargeRange(TspId chip, Cycle from, Cycle to, OpTimeClass cls,
                     FuncUnit unit);

    /** Cap on recorded phase markers. */
    static constexpr std::size_t kMarkerCap = 256;

    Cycle windowCycles_;
    std::string bench_ = "unknown";
    std::uint64_t seed_ = 0;
    bool hasSeed_ = false;

    std::map<TspId, std::map<std::uint64_t, ChipWindow>> chips_;
    std::map<LinkId, std::map<std::uint64_t, LinkWindow>> links_;
    std::map<std::uint64_t, HacWindow> hac_;
    std::vector<TimelineMarker> markers_;

    std::map<TspId, Pending> pending_;

    /** Per-link current receive-queue depth (arrivals minus Recvs). */
    std::map<LinkId, unsigned> queueDepth_;

    /** In-flight flits awaiting their consuming Recv: (flow,seq). */
    std::map<std::pair<FlowId, std::uint32_t>,
             std::vector<std::pair<Tick, LinkId>>>
        inFlight_;

    /** Mnemonic -> opcode, for attributing chip events. */
    std::map<std::string, Op, std::less<>> opByName_;

    std::uint64_t events_ = 0;
    Cycle spanCycles_ = 0;
};

} // namespace tsm

#endif // TSM_TELEMETRY_TIMELINE_HH
