#include "telemetry/phase.hh"

#include <algorithm>
#include <array>
#include <map>

#include "common/format.hh"
#include "common/table.hh"

namespace tsm {

const char *
regimeName(Regime r)
{
    switch (r) {
      case Regime::Idle:
        return "idle";
      case Regime::Compute:
        return "compute";
      case Regime::Network:
        return "network";
      case Regime::Sync:
        return "sync";
    }
    return "?";
}

char
regimeChar(Regime r)
{
    switch (r) {
      case Regime::Idle:
        return '.';
      case Regime::Compute:
        return 'C';
      case Regime::Network:
        return 'N';
      case Regime::Sync:
        return 'S';
    }
    return '?';
}

namespace {

Regime
classify(double busyFrac, double stallFrac, double netUtil,
         std::uint64_t flits, std::uint64_t hacAdj)
{
    if (stallFrac >= busyFrac && stallFrac >= netUtil && stallFrac > 0)
        return Regime::Sync;
    if (netUtil >= busyFrac && netUtil > 0)
        return Regime::Network;
    if (busyFrac > 0)
        return Regime::Compute;
    // Nothing charged as busy or stalled and no link busy time: fall
    // back on raw traffic. Flits without measurable utilization still
    // mean the network moved data; HAC adjustments alone mean the
    // window was spent keeping clocks aligned. A window that is all
    // idle cycles (a pipeline bubble) is exactly that — idle.
    if (flits > 0)
        return Regime::Network;
    if (hacAdj > 0)
        return Regime::Sync;
    return Regime::Idle;
}

} // namespace

PhaseAnalysis
analyzePhases(const TimelineSampler &sampler)
{
    PhaseAnalysis out;
    const std::uint64_t windows = sampler.numWindows();
    if (windows == 0)
        return out;

    const double windowPs =
        double(sampler.windowCycles()) * kCorePeriodPs;

    // Dense per-window aggregates from the sparse per-entity maps.
    std::vector<std::array<Cycle, kNumFuncUnits>> fuBusy(
        windows, std::array<Cycle, kNumFuncUnits>{});
    std::vector<Cycle> stall(windows, 0), idle(windows, 0);
    std::vector<std::uint64_t> flits(windows, 0), hacAdj(windows, 0);
    // Hottest link per window: track (busyPs, linkId) max; ties break
    // toward the lower link id because maps iterate ascending.
    std::vector<Tick> hotLinkBusy(windows, 0);
    std::vector<std::int64_t> hotLink(windows, -1);

    for (const auto &[chip, ws] : sampler.chips())
        for (const auto &[w, cw] : ws) {
            for (unsigned u = 0; u < kNumFuncUnits; ++u)
                fuBusy[w][u] += cw.busy[u];
            stall[w] += cw.stall;
            idle[w] += cw.idle;
        }
    for (const auto &[link, ws] : sampler.links())
        for (const auto &[w, lw] : ws) {
            flits[w] += lw.flits;
            if (lw.busyPs > hotLinkBusy[w]) {
                hotLinkBusy[w] = lw.busyPs;
                hotLink[w] = std::int64_t(link);
            }
        }
    for (const auto &[w, hw] : sampler.hac())
        hacAdj[w] += hw.adjustments;

    out.labels.reserve(windows);
    for (std::uint64_t w = 0; w < windows; ++w) {
        WindowLabel label;
        label.window = w;
        Cycle busyTotal = 0;
        Cycle hotFuBusy = 0;
        for (unsigned u = 0; u < kNumFuncUnits; ++u) {
            busyTotal += fuBusy[w][u];
            if (fuBusy[w][u] > hotFuBusy) {
                hotFuBusy = fuBusy[w][u];
                label.hotFu = std::int64_t(u);
            }
        }
        const Cycle charged = busyTotal + stall[w] + idle[w];
        label.busyFrac =
            charged > 0 ? double(busyTotal) / double(charged) : 0.0;
        label.stallFrac =
            charged > 0 ? double(stall[w]) / double(charged) : 0.0;
        label.netUtil =
            windowPs > 0 ? double(hotLinkBusy[w]) / windowPs : 0.0;
        label.hotLink = hotLink[w];
        label.regime = classify(label.busyFrac, label.stallFrac,
                                label.netUtil, flits[w], hacAdj[w]);
        out.labels.push_back(label);
    }

    // Merge consecutive same-regime windows into phases; aggregate
    // hottest link/FU over the whole phase rather than voting, so a
    // phase names the entity that did the most total work in it.
    std::uint64_t start = 0;
    while (start < windows) {
        std::uint64_t end = start;
        while (end + 1 < windows &&
               out.labels[end + 1].regime == out.labels[start].regime)
            ++end;

        PhaseSummary ph;
        ph.firstWindow = start;
        ph.lastWindow = end;
        ph.regime = out.labels[start].regime;

        std::array<Cycle, kNumFuncUnits> fuTotal{};
        std::map<std::int64_t, Tick> linkTotal;
        for (std::uint64_t w = start; w <= end; ++w) {
            ph.busyFrac += out.labels[w].busyFrac;
            ph.stallFrac += out.labels[w].stallFrac;
            ph.netUtil += out.labels[w].netUtil;
            ph.flits += flits[w];
            for (unsigned u = 0; u < kNumFuncUnits; ++u)
                fuTotal[u] += fuBusy[w][u];
            if (hotLink[w] >= 0)
                linkTotal[hotLink[w]] += hotLinkBusy[w];
        }
        const double n = double(end - start + 1);
        ph.busyFrac /= n;
        ph.stallFrac /= n;
        ph.netUtil /= n;
        Cycle best = 0;
        for (unsigned u = 0; u < kNumFuncUnits; ++u)
            if (fuTotal[u] > best) {
                best = fuTotal[u];
                ph.hotFu = std::int64_t(u);
            }
        Tick bestLink = 0;
        for (const auto &[link, busy] : linkTotal)
            if (busy > bestLink) {
                bestLink = busy;
                ph.hotLink = link;
            }
        out.phases.push_back(ph);
        start = end + 1;
    }
    return out;
}

Json
windowLabelsJson(const PhaseAnalysis &analysis)
{
    Json labels = Json::array();
    for (const WindowLabel &l : analysis.labels) {
        Json j = Json::object();
        j.set("w", l.window);
        j.set("regime", regimeName(l.regime));
        j.set("busy_frac", l.busyFrac);
        j.set("stall_frac", l.stallFrac);
        j.set("net_util", l.netUtil);
        j.set("hot_link", l.hotLink);
        j.set("hot_fu", l.hotFu < 0
                            ? Json("-")
                            : Json(funcUnitName(FuncUnit(l.hotFu))));
        labels.push(std::move(j));
    }
    return labels;
}

Json
phasesJson(const PhaseAnalysis &analysis)
{
    Json phases = Json::array();
    for (const PhaseSummary &ph : analysis.phases) {
        Json j = Json::object();
        j.set("first_w", ph.firstWindow);
        j.set("last_w", ph.lastWindow);
        j.set("windows", ph.windows());
        j.set("regime", regimeName(ph.regime));
        j.set("busy_frac", ph.busyFrac);
        j.set("stall_frac", ph.stallFrac);
        j.set("net_util", ph.netUtil);
        j.set("hot_link", ph.hotLink);
        j.set("hot_fu", ph.hotFu < 0
                            ? Json("-")
                            : Json(funcUnitName(FuncUnit(ph.hotFu))));
        j.set("flits", ph.flits);
        phases.push(std::move(j));
    }
    return phases;
}

std::string
renderPhaseTable(const Json &phases)
{
    if (phases.isNull() || phases.size() == 0)
        return "";
    std::string out = "bottleneck phases:\n";
    Table t({"windows", "regime", "hot link", "hot FU", "busy", "stall",
             "net util", "flits"});
    for (const Json &ph : phases.items()) {
        const std::int64_t hotLink = ph["hot_link"].integer();
        t.addRow({format("{}..{}", ph["first_w"].integer(),
                         ph["last_w"].integer()),
                  ph["regime"].str(),
                  hotLink < 0 ? std::string("-") : Table::num(hotLink),
                  ph["hot_fu"].str(),
                  Table::num(ph["busy_frac"].number() * 100, 1) + "%",
                  Table::num(ph["stall_frac"].number() * 100, 1) + "%",
                  Table::num(ph["net_util"].number() * 100, 1) + "%",
                  Table::num(ph["flits"].integer())});
    }
    out += t.ascii();
    return out;
}

} // namespace tsm
