/**
 * @file
 * Quickstart: build an 8-TSP node, schedule a tensor transfer with
 * the SSN compile-time scheduler, run it on the cycle-level
 * simulator, and verify that the simulation lands exactly where the
 * schedule said it would — the determinism the paper is about.
 *
 *   ./quickstart [--trace=FILE] [--metrics] [--digest] [--report=FILE]
 */

#include <cstdio>

#include "arch/chip.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "prof/report.hh"
#include "ssn/schedule_trace.hh"
#include "ssn/scheduler.hh"
#include "trace/session.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    TraceOptions opts;
    CliParser cli("quickstart");
    opts.registerFlags(cli);
    if (!cli.parse(argc, argv))
        return 2;
    TraceSession session(std::move(opts));
    // 1. The machine: one GroqNode-style chassis — 8 TSPs, fully
    //    connected by 28 C2C links (7 local ports each).
    const Topology topo = Topology::makeNode();
    std::printf("machine: %s\n", topo.describe().c_str());

    EventQueue eq;
    session.attach(eq.tracer());
    Network net(topo, eq, Rng(42));
    std::vector<std::unique_ptr<TspChip>> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t)
        chips.push_back(std::make_unique<TspChip>(t, net, DriftClock()));

    // 2. The work: move a 64 KiB tensor (205 vectors) from TSP 2 to
    //    TSP 5, starting at cycle 100.
    TensorTransfer transfer;
    transfer.flow = 1;
    transfer.src = 2;
    transfer.dst = 5;
    transfer.vectors = bytesToVectors(64 * kKiB);
    transfer.earliest = 100;

    // 3. Compile: the SSN scheduler resolves every serialization
    //    window on every link at compile time — "scheduled, not
    //    routed". Large tensors spread over non-minimal paths.
    SsnScheduler scheduler(topo);
    const NetworkSchedule schedule = scheduler.schedule({transfer});
    session.setRun("quickstart", 42);
    if (ProfileCollector *prof = session.profile())
        prof->setSchedule(schedule, topo, {transfer});
    traceSchedule(eq.tracer(), schedule);
    const auto &flow = schedule.flows.at(1);
    std::printf("scheduled %u vectors over %u paths; "
                "injection at cycle %llu, last arrival at cycle %llu\n",
                flow.vectors, flow.pathsUsed,
                (unsigned long long)flow.firstDeparture,
                (unsigned long long)flow.lastArrival);

    const auto report = validateSchedule(schedule, topo);
    std::printf("schedule validation: %s (%llu windows checked)\n",
                report.ok ? "OK" : report.firstViolation.c_str(),
                (unsigned long long)report.windowsChecked);

    // 4. Lower to per-chip programs (Send/Recv with absolute issue
    //    cycles) and execute on the cycle-level simulator.
    std::unordered_map<FlowId, LocalAddr> dst;
    dst[1] = LocalAddr::unflatten(0);
    ProgramSet programs = buildPrograms(schedule, topo, dst);
    chips[2]->setStream(0, makeVec(Vec(3.14f)));
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        programs.byChip[t].emitHalt();
        chips[t]->load(std::move(programs.byChip[t]));
        chips[t]->start(0);
    }
    eq.run();

    // 5. Verify: data landed, exactly when promised. Had any vector
    //    missed its window the chip model would have panicked.
    unsigned present = 0;
    for (std::uint32_t s = 0; s < transfer.vectors; ++s)
        present += chips[5]->mem().present(LocalAddr::unflatten(s));
    const Cycle halt =
        chips[5]->clock().tickToCycle(chips[5]->stats().haltTick);
    std::printf("destination holds %u/%u vectors; receiver halted at "
                "cycle %llu (schedule makespan %llu)\n",
                present, transfer.vectors, (unsigned long long)halt,
                (unsigned long long)schedule.makespan);
    std::printf("end-to-end transfer latency: %.2f us\n",
                double(schedule.makespan - transfer.earliest) /
                    kCoreFreqHz * 1e6);
    session.finish();
    return present == transfer.vectors ? 0 : 1;
}
