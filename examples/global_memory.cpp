/**
 * @file
 * The global shared address space in action (paper Fig 3, §4.2): the
 * node's 1.72 GiB of SRAM is addressed as one rank-5 tensor; remote
 * words are *pushed* by their producers at compile-scheduled times —
 * no request leg, no mutex, no fence.
 *
 *   ./global_memory
 */

#include <cstdio>
#include <memory>

#include "runtime/global_memory.hh"

using namespace tsm;

int
main()
{
    const Topology topo = Topology::makeNode();
    EventQueue eq;
    Network net(topo, eq, Rng(8));
    std::vector<std::unique_ptr<TspChip>> owned;
    std::vector<TspChip *> chips;
    for (TspId t = 0; t < topo.numTsps(); ++t) {
        owned.push_back(std::make_unique<TspChip>(t, net, DriftClock()));
        chips.push_back(owned.back().get());
    }
    GlobalMemory gm(topo, chips);
    std::printf("global memory: %.2f GiB over %u devices, addressed as "
                "[%u, 2, 44, 2, 4096] x 320 B\n\n",
                double(gm.capacity()) / double(kGiB), topo.numTsps(),
                topo.numTsps());

    // Producer: device 2 computes a 256 KiB tensor into its SRAM.
    const auto vectors = std::uint32_t(bytesToVectors(256 * kKiB));
    for (std::uint32_t w = 0; w < vectors; ++w) {
        GlobalAddr a;
        a.device = 2;
        a.local = LocalAddr::unflatten(w);
        gm.write(a, makeVec(Vec(float(w))));
    }

    // Consumers: devices 5 and 7 will need it. The compiler schedules
    // pushes — data moves toward its consumers before they ask.
    std::vector<PushRequest> pushes;
    for (TspId consumer : {5u, 7u}) {
        PushRequest p;
        p.src.device = 2;
        p.src.local = LocalAddr::unflatten(0);
        p.dstDevice = consumer;
        p.dstAddr = LocalAddr::unflatten(4096);
        p.vectors = vectors;
        pushes.push_back(p);
    }
    const auto compiled = gm.compile(pushes);
    std::printf("compiled %zu pushes: %zu scheduled vectors, makespan "
                "%.2f us, %s\n",
                pushes.size(), compiled.schedule.vectors.size(),
                double(compiled.schedule.makespan) / kCoreFreqHz * 1e6,
                validateSchedule(compiled.schedule, topo).ok
                    ? "conflict-free"
                    : "BUG");

    gm.execute(pushes);

    // Verify both consumers hold the data.
    bool ok = true;
    for (TspId consumer : {5u, 7u}) {
        for (std::uint32_t w = 0; w < vectors; ++w) {
            GlobalAddr a;
            a.device = consumer;
            a.local = LocalAddr::unflatten(4096 + w);
            ok &= gm.present(a) && (*gm.read(a))[0] == float(w);
        }
    }
    std::printf("consumers verified: %s\n", ok ? "yes" : "NO");
    std::printf("effective push bandwidth: %.1f GB/s aggregate\n",
                2.0 * 256 * kKiB /
                    (double(compiled.schedule.makespan) / kCoreFreqHz) /
                    1e9);
    return ok ? 0 : 1;
}
