/**
 * @file
 * The toolchain's inspector views: compile a contended workload, then
 * print the per-flow summary, the first windows of the link timeline,
 * the link-utilization profile (how well deterministic load balancing
 * spread the traffic), and one chip's disassembly.
 *
 *   ./inspect_schedule
 */

#include <cstdio>

#include "ssn/dump.hh"
#include "workload/traffic_gen.hh"

using namespace tsm;

int
main()
{
    const Topology topo = Topology::makeNode();
    SsnScheduler scheduler(topo);

    // A permutation workload plus one big transfer that needs
    // non-minimal spreading.
    auto transfers =
        generateTraffic(topo, TrafficPattern::Permutation, 24, 7);
    TensorTransfer big;
    big.flow = FlowId(transfers.size() + 1);
    big.src = 0;
    big.dst = 4;
    big.vectors = 128;
    transfers.push_back(big);

    const auto sched = scheduler.schedule(transfers);
    std::printf("scheduled %zu flows, %zu vectors, makespan %llu "
                "cycles (%.2f us)\n\n",
                sched.flows.size(), sched.vectors.size(),
                (unsigned long long)sched.makespan,
                double(sched.makespan) / kCoreFreqHz * 1e6);

    std::printf("--- flow summaries ---\n%s\n",
                dumpFlowSummaries(sched).c_str());

    std::printf("--- first 12 serialization windows ---\n%s\n",
                dumpSchedule(sched, topo, 12).c_str());

    std::printf("--- link utilization ---\n%s\n",
                dumpLinkUtilization(sched, topo).c_str());

    const auto programs = buildPrograms(sched, topo);
    std::printf("--- tsp0 program (first 16 instructions of %zu) ---\n",
                programs.byChip[0].size());
    Program head;
    for (std::size_t i = 0;
         i < std::min<std::size_t>(16, programs.byChip[0].size()); ++i)
        head.instrs.push_back(programs.byChip[0].instrs[i]);
    std::printf("%s", disassemble(head).c_str());
    return 0;
}
