/**
 * @file
 * BERT-Large inference on 4 TSPs: build the real encoder op graph,
 * partition it across the pipeline with the movement-aware compiler,
 * print the compiler's exact latency estimate, then "measure" many
 * runs (only the PCIe legs vary) — the paper's Fig 17 experiment.
 *
 *   ./bert_inference [tsps] [runs]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "workload/bert.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    const unsigned tsps = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
    const unsigned runs = argc > 2 ? unsigned(std::atoi(argv[2])) : 24240;

    const BertConfig config = BertConfig::large();
    const TspCostModel cost;

    const Graph g = buildBertGraph(config);
    std::printf("BERT-Large: %zu graph nodes, %.1f GFLOP/inference, "
                "%.0f MB of weights\n",
                g.size(), g.totalFlops() / 1e9,
                double(g.weightBytes()) / 1e6);

    const BertEstimate est = estimateBert(config, tsps, cost);
    std::printf("pipeline over %u TSPs (%u encoders/stage):\n", tsps,
                est.plan.stages.empty() ? 0
                                        : est.plan.stages[0].numBlocks);
    for (std::size_t s = 0; s < est.plan.stages.size(); ++s) {
        const auto &st = est.plan.stages[s];
        std::printf("  stage %zu: compute %.0f us, C2C %.0f us\n", s,
                    TspCostModel::cyclesToSeconds(st.computeCycles) * 1e6,
                    TspCostModel::cyclesToSeconds(st.commCycles) * 1e6);
    }
    std::printf("compiler latency estimate: %.1f us on-chip + %.1f us "
                "PCIe = %.1f us\n",
                est.chipSec * 1e6, est.pcieSec * 1e6, est.totalSec * 1e6);

    // Measure: the chip portion repeats to the cycle; only PCIe
    // invocation time varies run to run.
    const SampleSet samples = simulateBertRuns(est, runs, Rng(2024));
    const double p50 = samples.percentile(0.50) * 1e6;
    const double p99 = samples.percentile(0.99) * 1e6;
    const double pmax = samples.percentile(1.0) * 1e6;
    std::printf("\n%u runs: p50 %.1f us, p99 %.1f us, max %.1f us\n",
                runs, p50, p99, pmax);
    std::printf("compiler estimate is within %.2f%% of the median\n",
                (est.totalSec * 1e6 / p50 - 1.0) * 100.0);

    // 5 us bins around the median, as in Fig 17.
    Histogram hist((p50 - 30), (p50 + 50), 16);
    for (double s : samples.samples())
        hist.add(s * 1e6);
    std::printf("\nlatency histogram (us, 5 us bins):\n%s",
                hist.ascii(48).c_str());
    return 0;
}
