/**
 * @file
 * 8-way All-Reduce on a GroqNode vs the GPU shared-memory baseline:
 * sweep the tensor size and print realized bus bandwidth for both,
 * showing the synchronous fabric saturating orders of magnitude
 * earlier (paper Fig 16).
 *
 *   ./allreduce
 */

#include <cstdio>

#include "baseline/sharedmem_allreduce.hh"
#include "collective/allreduce.hh"
#include "common/table.hh"

using namespace tsm;

int
main()
{
    const Topology node = Topology::makeNode();
    HierarchicalAllReduce tsp(node);
    const GpuAllReduceModel gpu;

    Table table({"tensor", "TSP us", "TSP GB/s", "A100 us", "A100 GB/s"});
    for (Bytes bytes = 4 * kKiB; bytes <= 256 * kMiB; bytes *= 4) {
        const auto t = bytes <= 4 * kMiB ? tsp.scheduled(bytes)
                                         : tsp.analytic(bytes);
        const auto g = gpuRingAllReduce(gpu, bytes);
        std::string label =
            bytes >= kMiB
                ? (std::to_string(bytes / kMiB) + " MiB")
                : (std::to_string(bytes / kKiB) + " KiB");
        table.addRow({label, Table::num(t.seconds * 1e6, 1),
                      Table::num(t.busBandwidthBytesPerSec / 1e9, 1),
                      Table::num(g.seconds * 1e6, 1),
                      Table::num(g.busBandwidthBytesPerSec / 1e9, 1)});
    }
    std::printf("%s\n", table.ascii().c_str());

    // The multi-hop latency budget of §5.6.
    const Topology system = Topology::makeSingleLevel(32);
    std::printf("small-message all-reduce latency, 256-TSP dragonfly: "
                "%.2f us (paper: ~2.1 us over 3 hops)\n",
                HierarchicalAllReduce(system).smallMessageLatencySec() *
                    1e6);
    return 0;
}
