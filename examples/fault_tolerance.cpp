/**
 * @file
 * The N+1 reliability story of §4.5: run inferences over a 4-node
 * system (one node held back as the hot spare), inject a transient
 * multi-bit error (FEC detects, runtime replays), then a persistent
 * marginal node (runtime triangulates it from the per-link FEC
 * counters, swaps in the spare, replays) — capacity never drops.
 *
 *   ./fault_tolerance
 */

#include <cstdio>

#include "runtime/runtime.hh"

using namespace tsm;

namespace {

std::vector<TensorTransfer>
ringWork(const Topology &, const std::vector<TspId> &active)
{
    std::vector<TensorTransfer> out;
    for (std::size_t i = 0; i < active.size(); ++i) {
        TensorTransfer t;
        t.flow = FlowId(i + 1);
        t.src = active[i];
        t.dst = active[(i + 1) % active.size()];
        t.vectors = 16;
        out.push_back(t);
    }
    return out;
}

void
show(const char *what, const RunReport &r)
{
    std::printf("%-28s success=%s attempts=%u mbes=%llu spare=%s\n",
                what, r.success ? "yes" : "NO", r.attempts,
                (unsigned long long)r.mbesObserved,
                r.spareSwapped ? "swapped" : "held");
}

} // namespace

int
main()
{
    Runtime rt(4, /*seed=*/7);
    std::printf("system: 4 nodes (32 TSPs), node 3 is the hot spare; "
                "%u logical TSPs in service\n\n",
                rt.logicalTsps());

    show("clean inference:", rt.runInference(ringWork));

    FaultScenario transient;
    transient.faultyNode = 1;
    transient.mbeRate = 1.0;
    transient.persistent = false;
    show("transient MBE burst:", rt.runInference(ringWork, transient));

    FaultScenario persistent;
    persistent.faultyNode = 1;
    persistent.mbeRate = 1.0;
    persistent.persistent = true;
    show("persistent marginal node:",
         rt.runInference(ringWork, persistent, 4));

    std::printf("\nafter failover: %u logical TSPs still in service; "
                "active nodes:",
                rt.logicalTsps());
    for (unsigned n : rt.activeNodes())
        std::printf(" %u", n);
    std::printf("\n");

    show("post-repair inference:", rt.runInference(ringWork));
    return 0;
}
