/**
 * @file
 * Distributed matrix multiplication: decompose the paper's Fig 14
 * workload ([800 x 32576] x [32576 x 8192]) with column-wise and
 * row-wise weight splits across up to 104 TSPs, and watch latency
 * fall as TSPs (and their C2C links) are added.
 *
 *   ./distributed_matmul [M K N]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "workload/matmul.hh"

using namespace tsm;

int
main(int argc, char **argv)
{
    DistMatmulConfig cfg; // defaults to the paper's operation
    if (argc == 4) {
        cfg.m = std::strtoull(argv[1], nullptr, 10);
        cfg.k = std::strtoull(argv[2], nullptr, 10);
        cfg.n = std::strtoull(argv[3], nullptr, 10);
    }
    const TspCostModel cost;

    std::printf("distributed matmul [%llux%llu] x [%llux%llu], fp16\n",
                (unsigned long long)cfg.m, (unsigned long long)cfg.k,
                (unsigned long long)cfg.k, (unsigned long long)cfg.n);
    std::printf("decomposition: %u column splits x R row splits, row "
                "groups clustered per node\n\n",
                cfg.colSplits);

    Table table({"row splits", "TSPs", "compute us", "reduce us",
                 "latency us", "TFLOPs", "utilization %"});
    for (unsigned r = 1; r <= 13; ++r) {
        cfg.rowSplits = r;
        const auto res = planDistributedMatmul(cfg, cost);
        table.addRow({Table::num(r), Table::num(res.tsps),
                      Table::num(TspCostModel::cyclesToSeconds(
                                     res.computeCycles) *
                                     1e6,
                                 1),
                      Table::num(TspCostModel::cyclesToSeconds(
                                     res.reduceCycles) *
                                     1e6,
                                 1),
                      Table::num(res.seconds * 1e6, 1),
                      Table::num(res.tflops, 0),
                      Table::num(res.utilization * 100.0, 1)});
    }
    std::printf("%s\n", table.ascii().c_str());
    std::printf("Adding TSPs adds both compute AND C2C links, so "
                "latency keeps falling (paper Fig 14).\n");
    return 0;
}
