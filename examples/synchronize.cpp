/**
 * @file
 * The synchronization story of §3, end to end: eight TSPs with
 * independent, drifting clocks characterize their links with HAC
 * echoes (Table 2), align their HACs over a spanning tree, launch a
 * program simultaneously through DESKEW/TRANSMIT alignment, and hold
 * synchrony with RUNTIME_DESKEW.
 *
 *   ./synchronize
 */

#include <cstdio>

#include "common/table.hh"
#include "runtime/system.hh"
#include "sync/link_characterizer.hh"

using namespace tsm;

int
main()
{
    // Eight TSPs, clocks off by up to +-50 ppm, jittery links.
    SystemConfig cfg;
    cfg.numTsps = 8;
    cfg.driftPpmSigma = 50.0;
    cfg.jitter = true;
    TsmSystem sys(cfg);

    // 1. Characterize TSP0's seven intra-node links (Table 2).
    std::printf("link characterization (10k HAC echoes per link):\n");
    Table table({"link", "min", "mean", "max", "std"});
    const char *names = "ABCDEFG";
    for (TspId peer = 1; peer < 8; ++peer) {
        const LinkId link = sys.topo().linksBetween(0, peer)[0];
        LinkCharacterizer lc(sys.chip(0), sys.chip(peer), link);
        lc.start(10000);
        sys.eventq().run();
        const auto &st = lc.latencyCycles();
        table.addRow({std::string(1, names[peer - 1]),
                      Table::num(st.min(), 0), Table::num(st.mean(), 2),
                      Table::num(st.max(), 0),
                      Table::num(st.stddev(), 2)});
    }
    std::printf("%s(cycles; paper Table 2: mean ~216.9, std ~2.8)\n\n",
                table.ascii().c_str());

    // 2. Align every HAC to TSP0's time base over the spanning tree.
    const int residual = sys.synchronize();
    std::printf("HAC spanning-tree alignment: worst residual %d "
                "cycle(s)\n",
                residual);

    // 3. Launch a payload simultaneously on all chips: DESKEW +
    //    TRANSMIT alignment gives every chip the same start epoch,
    //    and RUNTIME_DESKEW re-centers the clocks mid-run.
    std::vector<Program> payloads(8);
    for (auto &p : payloads) {
        for (int seg = 0; seg < 4; ++seg) {
            p.emitCompute(50000);
            auto &rd = p.emit(Op::RuntimeDeskew);
            rd.imm = 64;
        }
    }
    sys.launchAligned(std::move(payloads));
    const bool done = sys.runToCompletion();
    std::printf("synchronized run %s\n", done ? "completed" : "FAILED");

    for (TspId t = 0; t < 8; ++t) {
        const auto &st = sys.chip(t).stats();
        std::printf("  tsp%u: halted at %.3f ms, runtime-deskew stall "
                    "%llu cycles\n",
                    t, psToUs(double(st.haltTick)) / 1e3,
                    (unsigned long long)st.deskewStallCycles);
    }
    return done ? 0 : 1;
}
