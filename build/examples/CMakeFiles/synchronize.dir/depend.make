# Empty dependencies file for synchronize.
# This may be replaced when dependencies are built.
