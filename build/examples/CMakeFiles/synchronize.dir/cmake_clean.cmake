file(REMOVE_RECURSE
  "CMakeFiles/synchronize.dir/synchronize.cpp.o"
  "CMakeFiles/synchronize.dir/synchronize.cpp.o.d"
  "synchronize"
  "synchronize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
