# Empty compiler generated dependencies file for synchronize.
# This may be replaced when dependencies are built.
