file(REMOVE_RECURSE
  "CMakeFiles/global_memory.dir/global_memory.cpp.o"
  "CMakeFiles/global_memory.dir/global_memory.cpp.o.d"
  "global_memory"
  "global_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
