# Empty compiler generated dependencies file for global_memory.
# This may be replaced when dependencies are built.
