file(REMOVE_RECURSE
  "CMakeFiles/bert_inference.dir/bert_inference.cpp.o"
  "CMakeFiles/bert_inference.dir/bert_inference.cpp.o.d"
  "bert_inference"
  "bert_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
