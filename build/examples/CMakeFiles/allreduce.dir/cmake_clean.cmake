file(REMOVE_RECURSE
  "CMakeFiles/allreduce.dir/allreduce.cpp.o"
  "CMakeFiles/allreduce.dir/allreduce.cpp.o.d"
  "allreduce"
  "allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
