# Empty dependencies file for inspect_schedule.
# This may be replaced when dependencies are built.
