file(REMOVE_RECURSE
  "libtsm.a"
)
