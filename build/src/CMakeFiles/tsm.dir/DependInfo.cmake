
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/chip.cc" "src/CMakeFiles/tsm.dir/arch/chip.cc.o" "gcc" "src/CMakeFiles/tsm.dir/arch/chip.cc.o.d"
  "/root/repo/src/arch/isa.cc" "src/CMakeFiles/tsm.dir/arch/isa.cc.o" "gcc" "src/CMakeFiles/tsm.dir/arch/isa.cc.o.d"
  "/root/repo/src/arch/mem.cc" "src/CMakeFiles/tsm.dir/arch/mem.cc.o" "gcc" "src/CMakeFiles/tsm.dir/arch/mem.cc.o.d"
  "/root/repo/src/arch/vec.cc" "src/CMakeFiles/tsm.dir/arch/vec.cc.o" "gcc" "src/CMakeFiles/tsm.dir/arch/vec.cc.o.d"
  "/root/repo/src/baseline/gpu_matmul.cc" "src/CMakeFiles/tsm.dir/baseline/gpu_matmul.cc.o" "gcc" "src/CMakeFiles/tsm.dir/baseline/gpu_matmul.cc.o.d"
  "/root/repo/src/baseline/hw_router.cc" "src/CMakeFiles/tsm.dir/baseline/hw_router.cc.o" "gcc" "src/CMakeFiles/tsm.dir/baseline/hw_router.cc.o.d"
  "/root/repo/src/baseline/sharedmem_allreduce.cc" "src/CMakeFiles/tsm.dir/baseline/sharedmem_allreduce.cc.o" "gcc" "src/CMakeFiles/tsm.dir/baseline/sharedmem_allreduce.cc.o.d"
  "/root/repo/src/collective/allreduce.cc" "src/CMakeFiles/tsm.dir/collective/allreduce.cc.o" "gcc" "src/CMakeFiles/tsm.dir/collective/allreduce.cc.o.d"
  "/root/repo/src/collective/primitives.cc" "src/CMakeFiles/tsm.dir/collective/primitives.cc.o" "gcc" "src/CMakeFiles/tsm.dir/collective/primitives.cc.o.d"
  "/root/repo/src/common/format.cc" "src/CMakeFiles/tsm.dir/common/format.cc.o" "gcc" "src/CMakeFiles/tsm.dir/common/format.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/tsm.dir/common/log.cc.o" "gcc" "src/CMakeFiles/tsm.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/tsm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/tsm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/tsm.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/tsm.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/tsm.dir/common/table.cc.o" "gcc" "src/CMakeFiles/tsm.dir/common/table.cc.o.d"
  "/root/repo/src/compiler/cost_model.cc" "src/CMakeFiles/tsm.dir/compiler/cost_model.cc.o" "gcc" "src/CMakeFiles/tsm.dir/compiler/cost_model.cc.o.d"
  "/root/repo/src/compiler/graph.cc" "src/CMakeFiles/tsm.dir/compiler/graph.cc.o" "gcc" "src/CMakeFiles/tsm.dir/compiler/graph.cc.o.d"
  "/root/repo/src/compiler/pipeline.cc" "src/CMakeFiles/tsm.dir/compiler/pipeline.cc.o" "gcc" "src/CMakeFiles/tsm.dir/compiler/pipeline.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/tsm.dir/net/network.cc.o" "gcc" "src/CMakeFiles/tsm.dir/net/network.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/tsm.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/tsm.dir/net/topology.cc.o.d"
  "/root/repo/src/runtime/global_memory.cc" "src/CMakeFiles/tsm.dir/runtime/global_memory.cc.o" "gcc" "src/CMakeFiles/tsm.dir/runtime/global_memory.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/CMakeFiles/tsm.dir/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/tsm.dir/runtime/runtime.cc.o.d"
  "/root/repo/src/runtime/system.cc" "src/CMakeFiles/tsm.dir/runtime/system.cc.o" "gcc" "src/CMakeFiles/tsm.dir/runtime/system.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/tsm.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/tsm.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/ssn/deadlock.cc" "src/CMakeFiles/tsm.dir/ssn/deadlock.cc.o" "gcc" "src/CMakeFiles/tsm.dir/ssn/deadlock.cc.o.d"
  "/root/repo/src/ssn/dump.cc" "src/CMakeFiles/tsm.dir/ssn/dump.cc.o" "gcc" "src/CMakeFiles/tsm.dir/ssn/dump.cc.o.d"
  "/root/repo/src/ssn/reservation.cc" "src/CMakeFiles/tsm.dir/ssn/reservation.cc.o" "gcc" "src/CMakeFiles/tsm.dir/ssn/reservation.cc.o.d"
  "/root/repo/src/ssn/scheduler.cc" "src/CMakeFiles/tsm.dir/ssn/scheduler.cc.o" "gcc" "src/CMakeFiles/tsm.dir/ssn/scheduler.cc.o.d"
  "/root/repo/src/ssn/spread.cc" "src/CMakeFiles/tsm.dir/ssn/spread.cc.o" "gcc" "src/CMakeFiles/tsm.dir/ssn/spread.cc.o.d"
  "/root/repo/src/sync/hac_aligner.cc" "src/CMakeFiles/tsm.dir/sync/hac_aligner.cc.o" "gcc" "src/CMakeFiles/tsm.dir/sync/hac_aligner.cc.o.d"
  "/root/repo/src/sync/link_characterizer.cc" "src/CMakeFiles/tsm.dir/sync/link_characterizer.cc.o" "gcc" "src/CMakeFiles/tsm.dir/sync/link_characterizer.cc.o.d"
  "/root/repo/src/sync/program_alignment.cc" "src/CMakeFiles/tsm.dir/sync/program_alignment.cc.o" "gcc" "src/CMakeFiles/tsm.dir/sync/program_alignment.cc.o.d"
  "/root/repo/src/sync/sync_tree.cc" "src/CMakeFiles/tsm.dir/sync/sync_tree.cc.o" "gcc" "src/CMakeFiles/tsm.dir/sync/sync_tree.cc.o.d"
  "/root/repo/src/workload/bert.cc" "src/CMakeFiles/tsm.dir/workload/bert.cc.o" "gcc" "src/CMakeFiles/tsm.dir/workload/bert.cc.o.d"
  "/root/repo/src/workload/cholesky.cc" "src/CMakeFiles/tsm.dir/workload/cholesky.cc.o" "gcc" "src/CMakeFiles/tsm.dir/workload/cholesky.cc.o.d"
  "/root/repo/src/workload/lstm.cc" "src/CMakeFiles/tsm.dir/workload/lstm.cc.o" "gcc" "src/CMakeFiles/tsm.dir/workload/lstm.cc.o.d"
  "/root/repo/src/workload/matmul.cc" "src/CMakeFiles/tsm.dir/workload/matmul.cc.o" "gcc" "src/CMakeFiles/tsm.dir/workload/matmul.cc.o.d"
  "/root/repo/src/workload/traffic_gen.cc" "src/CMakeFiles/tsm.dir/workload/traffic_gen.cc.o" "gcc" "src/CMakeFiles/tsm.dir/workload/traffic_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
