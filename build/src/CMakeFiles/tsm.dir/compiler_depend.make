# Empty compiler generated dependencies file for tsm.
# This may be replaced when dependencies are built.
