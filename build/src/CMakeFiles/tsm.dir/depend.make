# Empty dependencies file for tsm.
# This may be replaced when dependencies are built.
