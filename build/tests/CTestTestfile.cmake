# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_arch "/root/repo/build/tests/test_arch")
set_tests_properties(test_arch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;29;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sync "/root/repo/build/tests/test_sync")
set_tests_properties(test_sync PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;34;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ssn "/root/repo/build/tests/test_ssn")
set_tests_properties(test_ssn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;40;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baseline "/root/repo/build/tests/test_baseline")
set_tests_properties(test_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;47;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_compiler "/root/repo/build/tests/test_compiler")
set_tests_properties(test_compiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;53;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_collective "/root/repo/build/tests/test_collective")
set_tests_properties(test_collective PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;59;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;64;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;72;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;78;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;82;tsm_test;/root/repo/tests/CMakeLists.txt;0;")
