file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/global_memory_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/global_memory_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/runtime_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/runtime_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/system_edge_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/system_edge_test.cc.o.d"
  "test_runtime"
  "test_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
