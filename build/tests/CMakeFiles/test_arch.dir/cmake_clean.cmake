file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/chip_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/chip_test.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/isa_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/isa_test.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/mem_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/mem_test.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/vec_test.cc.o"
  "CMakeFiles/test_arch.dir/arch/vec_test.cc.o.d"
  "test_arch"
  "test_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
