file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/golden_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/golden_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/scheduler_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/scheduler_properties_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/spread_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/spread_properties_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/system_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/system_properties_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/topology_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/topology_properties_test.cc.o.d"
  "test_properties"
  "test_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
