file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/bert_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/bert_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/cholesky_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/cholesky_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/lstm_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/lstm_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/matmul_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/matmul_test.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/traffic_gen_test.cc.o"
  "CMakeFiles/test_workload.dir/workload/traffic_gen_test.cc.o.d"
  "test_workload"
  "test_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
