file(REMOVE_RECURSE
  "CMakeFiles/test_compiler.dir/compiler/graph_test.cc.o"
  "CMakeFiles/test_compiler.dir/compiler/graph_test.cc.o.d"
  "CMakeFiles/test_compiler.dir/compiler/lowering_integration_test.cc.o"
  "CMakeFiles/test_compiler.dir/compiler/lowering_integration_test.cc.o.d"
  "CMakeFiles/test_compiler.dir/compiler/pipeline_test.cc.o"
  "CMakeFiles/test_compiler.dir/compiler/pipeline_test.cc.o.d"
  "test_compiler"
  "test_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
