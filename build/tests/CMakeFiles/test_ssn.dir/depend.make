# Empty dependencies file for test_ssn.
# This may be replaced when dependencies are built.
