file(REMOVE_RECURSE
  "CMakeFiles/test_ssn.dir/ssn/dump_test.cc.o"
  "CMakeFiles/test_ssn.dir/ssn/dump_test.cc.o.d"
  "CMakeFiles/test_ssn.dir/ssn/reservation_test.cc.o"
  "CMakeFiles/test_ssn.dir/ssn/reservation_test.cc.o.d"
  "CMakeFiles/test_ssn.dir/ssn/scheduler_test.cc.o"
  "CMakeFiles/test_ssn.dir/ssn/scheduler_test.cc.o.d"
  "CMakeFiles/test_ssn.dir/ssn/spread_test.cc.o"
  "CMakeFiles/test_ssn.dir/ssn/spread_test.cc.o.d"
  "test_ssn"
  "test_ssn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
