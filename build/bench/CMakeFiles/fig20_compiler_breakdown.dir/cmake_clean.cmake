file(REMOVE_RECURSE
  "CMakeFiles/fig20_compiler_breakdown.dir/fig20_compiler_breakdown.cc.o"
  "CMakeFiles/fig20_compiler_breakdown.dir/fig20_compiler_breakdown.cc.o.d"
  "fig20_compiler_breakdown"
  "fig20_compiler_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_compiler_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
