# Empty dependencies file for micro_harness.
# This may be replaced when dependencies are built.
