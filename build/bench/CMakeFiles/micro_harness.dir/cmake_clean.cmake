file(REMOVE_RECURSE
  "CMakeFiles/micro_harness.dir/micro_harness.cc.o"
  "CMakeFiles/micro_harness.dir/micro_harness.cc.o.d"
  "micro_harness"
  "micro_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
