# Empty dependencies file for fig16_allreduce.
# This may be replaced when dependencies are built.
