file(REMOVE_RECURSE
  "CMakeFiles/fig16_allreduce.dir/fig16_allreduce.cc.o"
  "CMakeFiles/fig16_allreduce.dir/fig16_allreduce.cc.o.d"
  "fig16_allreduce"
  "fig16_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
