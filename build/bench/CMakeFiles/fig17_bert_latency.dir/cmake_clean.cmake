file(REMOVE_RECURSE
  "CMakeFiles/fig17_bert_latency.dir/fig17_bert_latency.cc.o"
  "CMakeFiles/fig17_bert_latency.dir/fig17_bert_latency.cc.o.d"
  "fig17_bert_latency"
  "fig17_bert_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bert_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
