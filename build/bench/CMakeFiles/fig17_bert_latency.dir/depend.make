# Empty dependencies file for fig17_bert_latency.
# This may be replaced when dependencies are built.
