# Empty dependencies file for fig18_bert_scaling.
# This may be replaced when dependencies are built.
