# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_ssn_vs_hw_contention.
