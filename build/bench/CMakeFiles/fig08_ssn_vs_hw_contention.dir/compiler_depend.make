# Empty compiler generated dependencies file for fig08_ssn_vs_hw_contention.
# This may be replaced when dependencies are built.
