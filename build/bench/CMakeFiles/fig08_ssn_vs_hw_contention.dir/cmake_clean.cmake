file(REMOVE_RECURSE
  "CMakeFiles/fig08_ssn_vs_hw_contention.dir/fig08_ssn_vs_hw_contention.cc.o"
  "CMakeFiles/fig08_ssn_vs_hw_contention.dir/fig08_ssn_vs_hw_contention.cc.o.d"
  "fig08_ssn_vs_hw_contention"
  "fig08_ssn_vs_hw_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ssn_vs_hw_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
