# Empty compiler generated dependencies file for fig14_distributed_matmul.
# This may be replaced when dependencies are built.
