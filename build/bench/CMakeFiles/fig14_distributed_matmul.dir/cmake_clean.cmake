file(REMOVE_RECURSE
  "CMakeFiles/fig14_distributed_matmul.dir/fig14_distributed_matmul.cc.o"
  "CMakeFiles/fig14_distributed_matmul.dir/fig14_distributed_matmul.cc.o.d"
  "fig14_distributed_matmul"
  "fig14_distributed_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_distributed_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
