file(REMOVE_RECURSE
  "CMakeFiles/ext_lstm_decode.dir/ext_lstm_decode.cc.o"
  "CMakeFiles/ext_lstm_decode.dir/ext_lstm_decode.cc.o.d"
  "ext_lstm_decode"
  "ext_lstm_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lstm_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
