# Empty compiler generated dependencies file for ext_lstm_decode.
# This may be replaced when dependencies are built.
