file(REMOVE_RECURSE
  "CMakeFiles/fig19_cholesky.dir/fig19_cholesky.cc.o"
  "CMakeFiles/fig19_cholesky.dir/fig19_cholesky.cc.o.d"
  "fig19_cholesky"
  "fig19_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
