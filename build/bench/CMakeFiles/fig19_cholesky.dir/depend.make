# Empty dependencies file for fig19_cholesky.
# This may be replaced when dependencies are built.
