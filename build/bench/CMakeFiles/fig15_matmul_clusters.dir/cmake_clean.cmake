file(REMOVE_RECURSE
  "CMakeFiles/fig15_matmul_clusters.dir/fig15_matmul_clusters.cc.o"
  "CMakeFiles/fig15_matmul_clusters.dir/fig15_matmul_clusters.cc.o.d"
  "fig15_matmul_clusters"
  "fig15_matmul_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_matmul_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
