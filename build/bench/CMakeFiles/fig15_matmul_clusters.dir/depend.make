# Empty dependencies file for fig15_matmul_clusters.
# This may be replaced when dependencies are built.
