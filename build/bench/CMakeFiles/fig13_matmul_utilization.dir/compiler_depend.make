# Empty compiler generated dependencies file for fig13_matmul_utilization.
# This may be replaced when dependencies are built.
