file(REMOVE_RECURSE
  "CMakeFiles/fig13_matmul_utilization.dir/fig13_matmul_utilization.cc.o"
  "CMakeFiles/fig13_matmul_utilization.dir/fig13_matmul_utilization.cc.o.d"
  "fig13_matmul_utilization"
  "fig13_matmul_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_matmul_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
