file(REMOVE_RECURSE
  "CMakeFiles/ext_reliability_scale.dir/ext_reliability_scale.cc.o"
  "CMakeFiles/ext_reliability_scale.dir/ext_reliability_scale.cc.o.d"
  "ext_reliability_scale"
  "ext_reliability_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reliability_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
