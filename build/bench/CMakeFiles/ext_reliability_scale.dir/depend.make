# Empty dependencies file for ext_reliability_scale.
# This may be replaced when dependencies are built.
