# Empty compiler generated dependencies file for fig10_nonminimal_routing.
# This may be replaced when dependencies are built.
