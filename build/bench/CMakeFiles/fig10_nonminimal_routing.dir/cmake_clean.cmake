file(REMOVE_RECURSE
  "CMakeFiles/fig10_nonminimal_routing.dir/fig10_nonminimal_routing.cc.o"
  "CMakeFiles/fig10_nonminimal_routing.dir/fig10_nonminimal_routing.cc.o.d"
  "fig10_nonminimal_routing"
  "fig10_nonminimal_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nonminimal_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
