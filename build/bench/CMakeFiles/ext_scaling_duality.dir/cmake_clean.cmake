file(REMOVE_RECURSE
  "CMakeFiles/ext_scaling_duality.dir/ext_scaling_duality.cc.o"
  "CMakeFiles/ext_scaling_duality.dir/ext_scaling_duality.cc.o.d"
  "ext_scaling_duality"
  "ext_scaling_duality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scaling_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
