# Empty compiler generated dependencies file for ext_scaling_duality.
# This may be replaced when dependencies are built.
