file(REMOVE_RECURSE
  "CMakeFiles/table2_hac_characterization.dir/table2_hac_characterization.cc.o"
  "CMakeFiles/table2_hac_characterization.dir/table2_hac_characterization.cc.o.d"
  "table2_hac_characterization"
  "table2_hac_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hac_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
