file(REMOVE_RECURSE
  "CMakeFiles/fig02_bandwidth_profile.dir/fig02_bandwidth_profile.cc.o"
  "CMakeFiles/fig02_bandwidth_profile.dir/fig02_bandwidth_profile.cc.o.d"
  "fig02_bandwidth_profile"
  "fig02_bandwidth_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bandwidth_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
